#include "core/context.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"
#include "tam/bounds.h"
#include "util/check.h"
#include "util/rng.h"

namespace sitam {

SitamContext::SitamContext() : SitamContext(Options{}) {}

SitamContext::SitamContext(Options options)
    : options_{std::max<std::size_t>(1, options.workload_capacity),
               std::max<std::size_t>(1, options.result_capacity),
               std::move(options.cache_directory)},
      workloads_(options_.workload_capacity) {}

std::shared_ptr<const Soc> SitamContext::intern(Soc soc) {
  const std::uint64_t key = soc_structure_hash(soc);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = arena_.find(key);
  if (it != arena_.end()) {
    it->second.last_used = ++tick_;
    return it->second.soc;
  }
  auto shared = std::make_shared<const Soc>(std::move(soc));
  arena_.insert_or_assign(key, ArenaEntry{shared, ++tick_});
  ++stats_.socs_interned;
  SITAM_COUNTER("core.context.socs_interned", 1);
  trim_arena_locked();
  return shared;
}

std::uint64_t SitamContext::request_key(const FlowRequest& request) {
  SITAM_CHECK_MSG(request.soc != nullptr, "FlowRequest without a SOC");
  std::uint64_t h = workload_config_hash(*request.soc, request.workload);
  const auto mix = [&h](std::uint64_t value) {
    h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h = split_mix64(h);
  };
  mix(request.mode == FlowMode::kOptimize ? 1 : 2);
  mix(request.widths.size());
  for (const int w : request.widths) mix(static_cast<std::uint64_t>(w));
  // Every optimizer knob that changes the result *or its stats*. threads
  // and cancel are deliberately absent: the restart loop is documented
  // bit-identical for any thread count, and cancellation is control flow.
  const OptimizerConfig& opt = request.optimizer;
  mix(opt.delta_eval ? 1 : 0);
  mix(opt.core_reshuffle ? 1 : 0);
  mix(opt.fast_candidate_scan ? 1 : 0);
  mix(static_cast<std::uint64_t>(opt.max_iterations));
  mix(static_cast<std::uint64_t>(opt.restarts));
  mix(opt.restart_seed);
  mix(static_cast<std::uint64_t>(opt.evaluator.pick));
  mix(static_cast<std::uint64_t>(opt.evaluator.style));
  mix(opt.evaluator.memoize ? 1 : 0);
  mix(static_cast<std::uint64_t>(opt.evaluator.power_budget));
  mix(opt.evaluator.exclusive_bus ? 1 : 0);
  mix(opt.evaluator.interleave_phases ? 1 : 0);
  return h;
}

FlowResult SitamContext::run(const FlowRequest& request) {
  if (request.soc == nullptr) {
    throw std::invalid_argument("SitamContext::run: request.soc is null");
  }
  if (request.widths.empty()) {
    throw std::invalid_argument("SitamContext::run: widths must not be empty");
  }
  if (request.workload.groupings.empty()) {
    throw std::invalid_argument(
        "SitamContext::run: workload.groupings must not be empty");
  }
  const std::uint64_t key = request_key(request);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
  }

  // Heavy work runs outside the lock; a Cancelled unwind from anywhere —
  // including a token that was set before the request arrived — leaves
  // the memo untouched (the cancelled counter is the only trace).
  FlowResult result;
  try {
    check_cancel(request.cancel);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = results_.find(key);
      if (it != results_.end()) {
        it->second.last_used = ++tick_;
        ++stats_.result_hits;
        SITAM_COUNTER("core.context.result_hits", 1);
        return it->second.result;
      }
      ++stats_.result_misses;
      SITAM_COUNTER("core.context.result_misses", 1);
    }
    result = compute(request);
  } catch (const Cancelled&) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.cancelled;
    SITAM_COUNTER("core.context.cancelled", 1);
    throw;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    results_.insert_or_assign(key, ResultEntry{result, ++tick_});
    trim_results_locked();
  }
  return result;
}

FlowResult SitamContext::compute(const FlowRequest& request) {
  const Soc& soc = *request.soc;

  // Workload tier: memory cache, then (if configured) disk, then prepare.
  // Hit accounting lives here rather than in WorkloadMemoryCache so the
  // counters line up with this context's requests.
  const std::string wkey = workload_cache_key(soc, request.workload);
  std::optional<SiWorkload> cached = workloads_.lookup(wkey);
  const bool workload_hit = cached.has_value();
  if (!workload_hit) {
    SiWorkload prepared =
        options_.cache_directory.empty()
            ? SiWorkload::prepare(soc, request.workload, request.cancel)
            : prepare_cached(soc, request.workload, options_.cache_directory,
                             request.cancel);
    workloads_.insert(wkey, prepared);
    cached.emplace(std::move(prepared));
  }
  const SiWorkload& workload = *cached;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (workload_hit) {
      ++stats_.workload_hits;
    } else {
      ++stats_.workload_misses;
    }
  }
  check_cancel(request.cancel);

  // The request's token drives every loop below; a token already set on
  // the optimizer config is honored when the request carries none.
  OptimizerConfig optimizer = request.optimizer;
  if (request.cancel != nullptr) optimizer.cancel = request.cancel;

  FlowResult result;
  result.mode = request.mode;
  if (request.mode == FlowMode::kSweep) {
    result.sweep = run_sweep(workload, request.widths, optimizer);
    return result;
  }

  const int w_max = request.widths.front();
  const int parts = request.workload.groupings.front();
  const SiTestSet& tests = workload.tests(parts);
  const TestTimeTable table(soc, w_max);
  result.optimize = optimize_tam(soc, table, tests, w_max, optimizer);
  result.tests = tests;
  result.lower_bound = lower_bounds(soc, table, tests, w_max).t_soc();
  result.area = soc_wrapper_area(soc, result.optimize.architecture);
  return result;
}

ContextStats SitamContext::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SitamContext::clear() {
  workloads_.clear();
  const std::lock_guard<std::mutex> lock(mutex_);
  results_.clear();
  arena_.clear();
}

void SitamContext::trim_results_locked() {
  while (results_.size() > options_.result_capacity) {
    auto victim = results_.begin();
    for (auto it = results_.begin(); it != results_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    SITAM_COUNTER("core.context.result_evictions", 1);
    results_.erase(victim);
  }
}

void SitamContext::trim_arena_locked() {
  while (arena_.size() > options_.result_capacity) {
    auto victim = arena_.begin();
    for (auto it = arena_.begin(); it != arena_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    arena_.erase(victim);
  }
}

}  // namespace sitam
