#include "core/gantt.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sitam {

std::string ascii_si_gantt(const Evaluation& evaluation,
                           const TamArchitecture& architecture,
                           const SiTestSet& tests, int chart_width) {
  if (chart_width < 8) {
    throw std::invalid_argument("ascii_si_gantt: chart_width must be >= 8");
  }
  std::ostringstream os;
  if (evaluation.schedule.items.empty()) {
    os << "(no SI tests scheduled)\n";
    return os.str();
  }
  const double scale =
      static_cast<double>(chart_width) /
      static_cast<double>(
          std::max<std::int64_t>(1, evaluation.schedule.makespan));
  for (std::size_t r = 0; r < architecture.rails.size(); ++r) {
    std::string row(static_cast<std::size_t>(chart_width), '.');
    for (const SiScheduleItem& item : evaluation.schedule.items) {
      if (std::find(item.rails.begin(), item.rails.end(),
                    static_cast<int>(r)) == item.rails.end()) {
        continue;
      }
      const char mark =
          tests.groups[static_cast<std::size_t>(item.group)].label.back();
      const int from = static_cast<int>(static_cast<double>(item.begin) *
                                        scale);
      const int to = std::max(
          from + 1,
          static_cast<int>(static_cast<double>(item.end) * scale));
      for (int x = from; x < to && x < chart_width; ++x) {
        row[static_cast<std::size_t>(x)] = mark;
      }
    }
    os << "TAM" << r + 1 << " (w=" << architecture.rails[r].width << ") |"
       << row << "|\n";
  }
  os << "0 cc" << std::string(static_cast<std::size_t>(chart_width) - 2, ' ')
     << evaluation.schedule.makespan << " cc\n";
  return os.str();
}

namespace {

constexpr const char* kPalette[] = {"#4c78a8", "#f58518", "#54a24b",
                                    "#e45756", "#72b7b2", "#eeca3b",
                                    "#b279a2", "#9d755d"};

}  // namespace

std::string svg_test_gantt(const Evaluation& evaluation,
                           const TamArchitecture& architecture,
                           const SiTestSet& tests) {
  const int rails = static_cast<int>(architecture.rails.size());
  const int row_height = 28;
  const int row_gap = 8;
  const int left_margin = 90;
  const int chart_width = 720;
  const int top_margin = 30;
  const int height =
      top_margin + rails * (row_height + row_gap) + 40;
  const std::int64_t total =
      std::max<std::int64_t>(1, evaluation.t_in + evaluation.t_si);
  const double scale = static_cast<double>(chart_width) /
                       static_cast<double>(total);

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << left_margin + chart_width + 20 << "\" height=\"" << height
     << "\" font-family=\"sans-serif\" font-size=\"11\">\n";
  os << "<text x=\"" << left_margin << "\" y=\"18\">InTest (grey) then SI "
        "tests (colored), total "
     << total << " cc</text>\n";

  const auto row_y = [&](int rail) {
    return top_margin + rail * (row_height + row_gap);
  };

  for (int r = 0; r < rails; ++r) {
    os << "<text x=\"4\" y=\"" << row_y(r) + row_height - 9 << "\">TAM"
       << r + 1 << " w=" << architecture.rails[static_cast<std::size_t>(r)]
                                .width
       << "</text>\n";
  }
  // InTest: one segment per core in alternating greys.
  for (std::size_t i = 0; i < evaluation.intest.size(); ++i) {
    const InTestSlot& slot = evaluation.intest[i];
    os << "<rect x=\""
       << static_cast<double>(left_margin) +
              static_cast<double>(slot.begin) * scale
       << "\" y=\"" << row_y(slot.rail) << "\" width=\""
       << std::max(1.0, static_cast<double>(slot.end - slot.begin) * scale)
       << "\" height=\"" << row_height << "\" fill=\""
       << (i % 2 == 0 ? "#b8b8b8" : "#d2d2d2") << "\"/>\n";
  }

  // SI phase starts after t_in.
  const double si_origin =
      static_cast<double>(left_margin) +
      static_cast<double>(evaluation.t_in) * scale;
  for (const SiScheduleItem& item : evaluation.schedule.items) {
    const char* color =
        kPalette[static_cast<std::size_t>(item.group) %
                 (sizeof kPalette / sizeof kPalette[0])];
    for (const int rail : item.rails) {
      os << "<rect x=\""
         << si_origin + static_cast<double>(item.begin) * scale
         << "\" y=\"" << row_y(rail) << "\" width=\""
         << std::max(1.0, static_cast<double>(item.duration) * scale)
         << "\" height=\"" << row_height << "\" fill=\"" << color
         << "\" fill-opacity=\"0.85\"/>\n";
    }
    // Label on the bottleneck rail.
    os << "<text x=\""
       << si_origin + static_cast<double>(item.begin) * scale + 3
       << "\" y=\"" << row_y(item.bottleneck_rail) + row_height - 9
       << "\" fill=\"white\">"
       << tests.groups[static_cast<std::size_t>(item.group)].label
       << "</text>\n";
  }

  // Axis.
  const int axis_y = row_y(rails) + 4;
  os << "<line x1=\"" << left_margin << "\" y1=\"" << axis_y << "\" x2=\""
     << left_margin + chart_width << "\" y2=\"" << axis_y
     << "\" stroke=\"black\"/>\n";
  os << "<text x=\"" << left_margin << "\" y=\"" << axis_y + 16
     << "\">0</text>\n";
  os << "<text x=\"" << left_margin + chart_width - 60 << "\" y=\""
     << axis_y + 16 << "\">" << total << " cc</text>\n";
  os << "</svg>\n";
  return os.str();
}

}  // namespace sitam
