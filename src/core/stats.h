// Multi-seed experiment statistics.
//
// The §5 workload is random (one draw per table in the paper); this module
// repeats experiments across seeds and summarizes ΔT_[8] and ΔT_g so the
// reproduction can show which trends are robust to the draw and which are
// noise. Used by the seed_sensitivity bench.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/flow.h"

namespace sitam {

struct SampleStats {
  double mean = 0.0;
  double stddev = 0.0;  ///< Population standard deviation.
  double min = 0.0;
  double max = 0.0;
  int samples = 0;
};

/// Summary statistics; an empty span yields all-zero stats.
[[nodiscard]] SampleStats summarize(std::span<const double> values);

struct SeedStudyRow {
  int w_max = 0;
  SampleStats delta_baseline_pct;  ///< ΔT_[8] across seeds.
  SampleStats delta_g_pct;         ///< ΔT_g across seeds.
  SampleStats t_min;               ///< Best total time across seeds.
};

/// Runs the full experiment for every (seed, width) pair; `base` provides
/// everything except the seed. Throws on empty seeds/widths.
[[nodiscard]] std::vector<SeedStudyRow> run_seed_study(
    const Soc& soc, const SiWorkloadConfig& base,
    std::span<const std::uint64_t> seeds, std::span<const int> widths,
    const OptimizerConfig& config = {});

}  // namespace sitam
