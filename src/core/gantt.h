// Schedule visualization: ASCII Gantt charts for the terminal and SVG for
// reports. One row per TestRail; the InTest phase (cores sequential on
// their rail) is followed by the SI phase (Algorithm 1 schedule, tests
// spanning multiple rails).
#pragma once

#include <string>

#include "sitest/group.h"
#include "tam/evaluator.h"

namespace sitam {

/// Fixed-width ASCII chart of the SI schedule ('.' = idle; each test is
/// drawn with the last character of its group label). `chart_width` is the
/// number of character columns (>= 8, throws otherwise).
[[nodiscard]] std::string ascii_si_gantt(const Evaluation& evaluation,
                                         const TamArchitecture& architecture,
                                         const SiTestSet& tests,
                                         int chart_width = 64);

/// Standalone SVG of the full test session: per-rail InTest bars followed
/// by the SI test rectangles, with labels and a time axis.
[[nodiscard]] std::string svg_test_gantt(const Evaluation& evaluation,
                                         const TamArchitecture& architecture,
                                         const SiTestSet& tests);

}  // namespace sitam
