#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sitam {

SampleStats summarize(std::span<const double> values) {
  SampleStats stats;
  stats.samples = static_cast<int>(values.size());
  if (values.empty()) return stats;
  double sum = 0.0;
  stats.min = values.front();
  stats.max = values.front();
  for (const double v : values) {
    sum += v;
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = sum / static_cast<double>(values.size());
  double variance = 0.0;
  for (const double v : values) {
    variance += (v - stats.mean) * (v - stats.mean);
  }
  stats.stddev = std::sqrt(variance / static_cast<double>(values.size()));
  return stats;
}

std::vector<SeedStudyRow> run_seed_study(const Soc& soc,
                                         const SiWorkloadConfig& base,
                                         std::span<const std::uint64_t> seeds,
                                         std::span<const int> widths,
                                         const OptimizerConfig& config) {
  if (seeds.empty() || widths.empty()) {
    throw std::invalid_argument("run_seed_study: empty seeds or widths");
  }

  // Prepare one workload per seed (the expensive part), then sweep widths.
  std::vector<SiWorkload> workloads;
  workloads.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    SiWorkloadConfig config_for_seed = base;
    config_for_seed.seed = seed;
    workloads.push_back(SiWorkload::prepare(soc, config_for_seed));
  }

  std::vector<SeedStudyRow> rows;
  rows.reserve(widths.size());
  for (const int w : widths) {
    std::vector<double> delta_baseline;
    std::vector<double> delta_g;
    std::vector<double> t_min;
    for (const SiWorkload& workload : workloads) {
      const ExperimentOutcome outcome = run_experiment(workload, w, config);
      delta_baseline.push_back(outcome.delta_baseline_pct());
      delta_g.push_back(outcome.delta_g_pct());
      t_min.push_back(static_cast<double>(outcome.t_min));
    }
    SeedStudyRow row;
    row.w_max = w;
    row.delta_baseline_pct = summarize(delta_baseline);
    row.delta_g_pct = summarize(delta_g);
    row.t_min = summarize(t_min);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace sitam
