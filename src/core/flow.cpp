#include "core/flow.h"

#include <algorithm>
#include <future>
#include <limits>
#include <stdexcept>
#include <thread>

#include "obs/obs.h"
#include "pattern/compaction.h"
#include "util/check.h"
#include "util/log.h"
#include "util/rng.h"

namespace sitam {

SiWorkload::SiWorkload(Soc soc, SiWorkloadConfig config)
    : soc_(std::move(soc)), config_(std::move(config)), terminals_(soc_) {}

SiWorkload SiWorkload::prepare(const Soc& soc, const SiWorkloadConfig& config,
                               const CancelToken* cancel) {
  validate(soc);
  check_cancel(cancel);
  if (config.groupings.empty()) {
    throw std::invalid_argument("SiWorkload: groupings must not be empty");
  }
  for (const int parts : config.groupings) {
    if (parts < 1) {
      throw std::invalid_argument("SiWorkload: grouping parts must be >= 1");
    }
  }
  if (config.pattern_count < 0) {
    throw std::invalid_argument("SiWorkload: negative pattern count");
  }

  SiWorkload workload(soc, config);
  Rng rng(config.seed);
  std::vector<SiPattern> raw;
  {
    SITAM_TRACE_SPAN_ARG("flow.workload.generate", config.pattern_count);
    raw = generate_random_patterns(workload.terminals_, config.pattern_count,
                                   config.patterns, rng);
  }
  check_cancel(cancel);

  GroupingConfig grouping = config.grouping;
  grouping.bus_width = std::max(grouping.bus_width, config.patterns.bus_width);
  grouping.partition.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  // With a single grouping there is nothing to fan out across, so spend the
  // worker threads *inside* the compaction sweep instead. The parallel sweep
  // is bit-identical to the serial one, so this only changes wall-clock.
  if (config.parallel_prepare && config.groupings.size() == 1 &&
      grouping.compaction.threads == 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    grouping.compaction.threads = static_cast<int>(std::clamp(hw, 1u, 8u));
  }

  workload.test_sets_.reserve(config.groupings.size());
  if (config.parallel_prepare && config.groupings.size() > 1) {
    std::vector<std::future<SiTestSet>> futures;
    futures.reserve(config.groupings.size());
    for (const int parts : config.groupings) {
      futures.push_back(std::async(std::launch::async, [&, parts] {
        SITAM_TRACE_SPAN_ARG("flow.workload.compact", parts);
        return build_si_test_set(raw, workload.terminals_, parts, grouping);
      }));
    }
    for (auto& future : futures) {
      workload.test_sets_.push_back(future.get());
    }
    check_cancel(cancel);
  } else {
    for (const int parts : config.groupings) {
      check_cancel(cancel);
      SITAM_TRACE_SPAN_ARG("flow.workload.compact", parts);
      workload.test_sets_.push_back(
          build_si_test_set(raw, workload.terminals_, parts, grouping));
    }
  }
  for (std::size_t i = 0; i < workload.test_sets_.size(); ++i) {
    SITAM_INFO << "workload " << soc.name << " N_r=" << config.pattern_count
               << " parts=" << config.groupings[i] << ": "
               << workload.test_sets_[i].total_patterns()
               << " compacted patterns in "
               << workload.test_sets_[i].groups.size() << " groups";
  }
  return workload;
}

SiWorkload SiWorkload::from_prepared(const Soc& soc,
                                     const SiWorkloadConfig& config,
                                     std::vector<SiTestSet> test_sets) {
  validate(soc);
  if (test_sets.size() != config.groupings.size()) {
    throw std::invalid_argument(
        "SiWorkload::from_prepared: one test set per grouping required");
  }
  for (std::size_t i = 0; i < test_sets.size(); ++i) {
    if (test_sets[i].parts != config.groupings[i]) {
      throw std::invalid_argument(
          "SiWorkload::from_prepared: test set " + std::to_string(i) +
          " has parts=" + std::to_string(test_sets[i].parts) +
          ", expected " + std::to_string(config.groupings[i]));
    }
  }
  SiWorkload workload(soc, config);
  workload.test_sets_ = std::move(test_sets);
  return workload;
}

const SiTestSet& SiWorkload::tests(int parts) const {
  for (std::size_t i = 0; i < config_.groupings.size(); ++i) {
    if (config_.groupings[i] == parts) return test_sets_[i];
  }
  throw std::out_of_range("SiWorkload: grouping " + std::to_string(parts) +
                          " was not prepared");
}

double ExperimentOutcome::delta_baseline_pct() const {
  if (t_baseline == 0) return 0.0;
  return 100.0 * static_cast<double>(t_baseline - t_min) /
         static_cast<double>(t_baseline);
}

double ExperimentOutcome::delta_g_pct() const {
  if (per_grouping.empty()) return 0.0;
  const std::int64_t t_g1 = per_grouping.front().evaluation.t_soc;
  if (t_g1 == 0) return 0.0;
  return 100.0 * static_cast<double>(t_g1 - t_min) /
         static_cast<double>(t_g1);
}

ExperimentOutcome run_experiment(const SiWorkload& workload, int w_max,
                                 const OptimizerConfig& config) {
  if (w_max < 1) {
    throw std::invalid_argument("run_experiment: w_max must be >= 1");
  }
  const Soc& soc = workload.soc();
  const TestTimeTable table(soc, w_max);

  ExperimentOutcome outcome;
  outcome.w_max = w_max;

  // Baseline T_[8]: one InTest-only TR-Architect run, then the fixed
  // architecture is scored against every grouping's SI tests; the best
  // grouping is credited to the baseline (most charitable reading).
  {
    SITAM_TRACE_SPAN_ARG("flow.experiment.baseline", w_max);
    static const SiTestSet kNoTests{};
    const OptimizeResult intest_only =
        optimize_tam(soc, table, kNoTests, w_max, config);
    outcome.baseline_architecture = intest_only.architecture;
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const int parts : workload.groupings()) {
      const TamEvaluator evaluator(soc, table, workload.tests(parts));
      best = std::min(best,
                      evaluator.evaluate(outcome.baseline_architecture).t_soc);
    }
    outcome.t_baseline = best;
  }

  // T_g_i: the SI-aware optimizer per grouping.
  outcome.t_min = std::numeric_limits<std::int64_t>::max();
  for (const int parts : workload.groupings()) {
    check_cancel(config.cancel);
    SITAM_TRACE_SPAN_ARG("flow.experiment.grouping", parts);
    OptimizeResult result =
        optimize_tam(soc, table, workload.tests(parts), w_max, config);
    if (result.evaluation.t_soc < outcome.t_min) {
      outcome.t_min = result.evaluation.t_soc;
      outcome.best_grouping = parts;
    }
    outcome.per_grouping.push_back(std::move(result));
  }
  return outcome;
}

SweepResult run_sweep(const SiWorkload& workload,
                      const std::vector<int>& widths,
                      const OptimizerConfig& config) {
  SweepResult sweep;
  sweep.soc_name = workload.soc().name;
  sweep.pattern_count = workload.raw_pattern_count();
  sweep.groupings = workload.groupings();
  for (const int w : widths) {
    check_cancel(config.cancel);
    SITAM_INFO << "sweep " << sweep.soc_name << ": W_max=" << w;
    SITAM_TRACE_SPAN_ARG("flow.sweep.width", w);
    sweep.rows.push_back(run_experiment(workload, w, config));
  }
  return sweep;
}

}  // namespace sitam
