// End-to-end experiment flow (the §5 harness).
//
// A SiWorkload captures everything that does *not* depend on the TAM width:
// the random SI pattern set (generated per §5) and, for each grouping
// parameter i, the two-dimensionally compacted SI test set. run_experiment /
// run_sweep then optimize TAM architectures per width and produce rows in
// the exact shape of the paper's Tables 2 and 3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interconnect/terminal_space.h"
#include "pattern/generator.h"
#include "sitest/group.h"
#include "soc/soc.h"
#include "tam/optimizer.h"
#include "util/cancel.h"

namespace sitam {

struct SiWorkloadConfig {
  std::int64_t pattern_count = 10000;  ///< N_r: raw SI vector pairs.
  RandomPatternConfig patterns;        ///< §5 generator knobs.
  std::vector<int> groupings = {1, 2, 4, 8};  ///< i values for T_g_i.
  GroupingConfig grouping;             ///< Partitioner + bus width.
  std::uint64_t seed = 0x20070604ULL;  ///< Drives all randomness.
  /// Compact the groupings on worker threads (results are identical to the
  /// sequential path — each grouping is an independent deterministic
  /// computation over the same raw pattern set).
  bool parallel_prepare = true;
};

/// Prepared SI workload: raw patterns plus compacted test sets per
/// grouping parameter.
class SiWorkload {
 public:
  /// Generates and compacts; the SOC is copied in.
  /// Throws std::invalid_argument on bad config (empty groupings,
  /// non-positive grouping values, negative pattern count). `cancel` is a
  /// cooperative cancellation token checked at grouping boundaries
  /// (nullptr = never cancelled); a cancelled prepare unwinds with
  /// sitam::Cancelled before any cache sees the partial workload.
  static SiWorkload prepare(const Soc& soc, const SiWorkloadConfig& config,
                            const CancelToken* cancel = nullptr);

  /// Rebuilds a workload from previously-prepared test sets (one per
  /// grouping, in config order) — the cache path; see core/cache.h.
  /// Throws std::invalid_argument if the counts mismatch.
  static SiWorkload from_prepared(const Soc& soc,
                                  const SiWorkloadConfig& config,
                                  std::vector<SiTestSet> test_sets);

  [[nodiscard]] const Soc& soc() const { return soc_; }
  [[nodiscard]] const TerminalSpace& terminals() const { return terminals_; }
  [[nodiscard]] const SiWorkloadConfig& config() const { return config_; }
  [[nodiscard]] std::int64_t raw_pattern_count() const {
    return config_.pattern_count;
  }
  [[nodiscard]] const std::vector<int>& groupings() const {
    return config_.groupings;
  }
  /// Compacted SI test set for grouping `parts`; throws std::out_of_range
  /// if `parts` was not in config().groupings.
  [[nodiscard]] const SiTestSet& tests(int parts) const;

 private:
  SiWorkload(Soc soc, SiWorkloadConfig config);

  Soc soc_;
  SiWorkloadConfig config_;
  TerminalSpace terminals_;
  std::vector<SiTestSet> test_sets_;  // parallel to config_.groupings
};

/// Result of one (SOC, N_r, W_max) cell: the baseline and every grouping.
struct ExperimentOutcome {
  int w_max = 0;
  /// T_[8]: InTest-only TR-Architect architecture, scored against the SI
  /// tests (best grouping on that fixed architecture).
  std::int64_t t_baseline = 0;
  TamArchitecture baseline_architecture;
  /// T_g_i per grouping (parallel to SiWorkload::groupings()).
  std::vector<OptimizeResult> per_grouping;
  std::int64_t t_min = 0;
  int best_grouping = 0;  ///< The i achieving T_min.

  [[nodiscard]] double delta_baseline_pct() const;  ///< ΔT_[8] in %.
  [[nodiscard]] double delta_g_pct() const;         ///< ΔT_g in %.
};

/// Runs the full §5 protocol for one TAM width.
[[nodiscard]] ExperimentOutcome run_experiment(
    const SiWorkload& workload, int w_max, const OptimizerConfig& config = {});

struct SweepResult {
  std::string soc_name;
  std::int64_t pattern_count = 0;
  std::vector<int> groupings;
  std::vector<ExperimentOutcome> rows;  ///< One per width, ascending.
};

/// Runs run_experiment for every width (the paper uses 8..64 step 8).
[[nodiscard]] SweepResult run_sweep(const SiWorkload& workload,
                                    const std::vector<int>& widths,
                                    const OptimizerConfig& config = {});

}  // namespace sitam
