#include "pattern/packed.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

#include "util/check.h"

namespace sitam {

namespace {

[[noreturn]] void throw_terminal_out_of_range(int terminal) {
  throw std::out_of_range("compaction: terminal id " +
                          std::to_string(terminal) +
                          " outside declared terminal space");
}

[[noreturn]] void throw_bus_out_of_range(int line) {
  throw std::out_of_range("compaction: bus line " + std::to_string(line) +
                          " outside declared bus width");
}

}  // namespace

PackedPatternSet::PackedPatternSet(std::span<const SiPattern> patterns,
                                   PackedLayout layout)
    : layout_(layout) {
  if (layout.total_terminals < 0 || layout.bus_width < 0) {
    throw std::invalid_argument("PackedPatternSet: negative dimensions");
  }
  const std::size_t n = patterns.size();
  const auto bus_words = static_cast<std::size_t>(layout.bus_words());
  headers_.reserve(n);
  bus_begin_.reserve(n + 1);
  bus_begin_.push_back(0);
  bus_masks_.assign(n * bus_words, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const SiPattern& p = patterns[i];
    PackedHeader header;
    header.slot_begin = static_cast<std::uint32_t>(slots_.size());
    for (const auto& [terminal, value] : p.assignments()) {
      if (terminal >= layout.total_terminals) {
        throw_terminal_out_of_range(terminal);
      }
      const auto word = static_cast<std::uint32_t>(terminal) >> 6;
      const auto bit = static_cast<std::uint32_t>(terminal) & 63u;
      // assignments() is sorted by terminal, so slots arrive in word order
      // and a new word only ever extends the tail.
      if (slots_.size() == header.slot_begin || slots_.back().word != word) {
        slots_.push_back(PackedSlot{word, 0, 0, 0});
      }
      PackedSlot& slot = slots_.back();
      slot.care |= std::uint64_t{1} << bit;
      slot.value |= value_plane_bit(value) << bit;
      slot.active |= active_plane_bit(value) << bit;
      header.summary |= std::uint64_t{1} << (word & 63u);
    }
    header.slot_end = static_cast<std::uint32_t>(slots_.size());

    for (const BusBit& bit : p.bus_bits()) {
      if (bit.line >= layout.bus_width) throw_bus_out_of_range(bit.line);
      const auto line = static_cast<std::size_t>(bit.line);
      bus_masks_[i * bus_words + (line >> 6)] |= std::uint64_t{1}
                                                 << (line & 63u);
      bus_bits_.push_back(bit);
      header.uniform_driver = header.uniform_driver == kNoBusDriver ||
                                      header.uniform_driver == bit.driver_core
                                  ? bit.driver_core
                                  : kMixedBusDrivers;
    }
    bus_begin_.push_back(static_cast<std::uint32_t>(bus_bits_.size()));
    if (bus_words > 0) header.bus_word0 = bus_masks_[i * bus_words];
    headers_.push_back(header);
  }
}

bool PackedPatternSet::compatible(std::size_t i, std::size_t j) const {
  if ((headers_[i].summary & headers_[j].summary) != 0) {
    // Two-pointer walk over the sorted slot lists; only equal words can
    // conflict.
    const auto a = slots(i);
    const auto b = slots(j);
    std::size_t x = 0;
    std::size_t y = 0;
    while (x < a.size() && y < b.size()) {
      if (a[x].word < b[y].word) {
        ++x;
      } else if (a[x].word > b[y].word) {
        ++y;
      } else {
        const std::uint64_t both = a[x].care & b[y].care;
        if ((both & ((a[x].value ^ b[y].value) |
                     (a[x].active ^ b[y].active))) != 0) {
          return false;
        }
        ++x;
        ++y;
      }
    }
  }

  const auto mask_a = bus_mask(i);
  const auto mask_b = bus_mask(j);
  std::uint64_t overlap = 0;
  for (std::size_t w = 0; w < mask_a.size(); ++w) {
    overlap |= mask_a[w] & mask_b[w];
  }
  if (overlap == 0) return true;
  const int da = headers_[i].uniform_driver;
  if (da >= 0 && da == headers_[j].uniform_driver) return true;
  // Rare path: shared lines with non-uniform drivers — resolve through the
  // sorted disambiguation tables.
  const auto bus_a = bus_bits(i);
  const auto bus_b = bus_bits(j);
  std::size_t x = 0;
  std::size_t y = 0;
  while (x < bus_a.size() && y < bus_b.size()) {
    if (bus_a[x].line < bus_b[y].line) {
      ++x;
    } else if (bus_a[x].line > bus_b[y].line) {
      ++y;
    } else {
      if (bus_a[x].driver_core != bus_b[y].driver_core) return false;
      ++x;
      ++y;
    }
  }
  return true;
}

PackedSweepIndex::PackedSweepIndex(const PackedPatternSet& set)
    : set_(&set), records_(set.size()) {
  for (std::size_t i = 0; i < set.size(); ++i) {
    const PackedHeader& h = set.header(i);
    const std::span<const PackedSlot> slots = set.slots(i);
    Record& r = records_[i];
    std::uint64_t* const care[4] = {&r.care0, &r.care1, &r.care2, &r.care3};
    std::uint64_t* const value[4] = {&r.value0, &r.value1, &r.value2,
                                     &r.value3};
    std::uint64_t* const active[4] = {&r.active0, &r.active1, &r.active2,
                                      &r.active3};
    std::size_t inlined = 0;
    while (inlined < slots.size() && inlined < 4 &&
           slots[inlined].word <= 0xffffu) {
      const PackedSlot& s = slots[inlined];
      *care[inlined] = s.care;
      *value[inlined] = s.value;
      *active[inlined] = s.active;
      r.word[inlined] = static_cast<std::uint16_t>(s.word);
      ++inlined;
    }
    r.rest_begin = h.slot_begin + static_cast<std::uint32_t>(inlined);
    r.slot_end = h.slot_end;
    r.bus_word0 = h.bus_word0;
    r.uniform_driver = h.uniform_driver;
  }
}

PackedAccumulator::PackedAccumulator(PackedLayout layout)
    : PackedAccumulator(layout, packed_active_kernels()) {}

PackedAccumulator::PackedAccumulator(PackedLayout layout,
                                     const PackedKernels& kernels)
    : layout_(layout),
      kernels_(&kernels),
      planes_(std::max<std::size_t>(
          1, static_cast<std::size_t>(layout.signal_words()))),
      bus_mask_(static_cast<std::size_t>(layout.bus_words()), 0),
      bus_driver_(static_cast<std::size_t>(layout.bus_width), 0),
      bus_epoch_(static_cast<std::size_t>(layout.bus_width), 0) {}

void PackedAccumulator::reset() {
  // The planes are a few hundred bytes — clearing them beats bookkeeping.
  // The per-line driver ids are invalidated wholesale by the epoch bump.
  std::fill(planes_.begin(), planes_.end(), PlaneWord{});
  std::fill(bus_mask_.begin(), bus_mask_.end(), 0);
  summary_ = 0;
  bus0_ = 0;
  ++epoch_;
  driver_state_ = kNoBusDriver;
}

bool PackedAccumulator::fits(const PackedPatternSet& set,
                             std::size_t i) const {
  SITAM_DCHECK(set.layout() == layout_);
  // The header consolidates everything the overwhelmingly common reject/
  // accept decisions need into one cache line per candidate.
  const PackedHeader& h = set.header(i);
  if ((h.summary & summary_) != 0) {
    const PackedSlot* const s = set.slot_data() + h.slot_begin;
    const PackedSlot* const end = set.slot_data() + h.slot_end;
#if SITAM_PACKED_KERNEL_DISPATCH
    if (kernels_->slots_conflict(s, end, planes_.data())) return false;
#else
    if (packed_scalar_slots_conflict(s, end, planes_.data())) return false;
#endif
  }
  return fits_bus(set, i, h.bus_word0, h.uniform_driver);
}

bool PackedAccumulator::fits_bus(const PackedPatternSet& set, std::size_t i,
                                 std::uint64_t bus_word0,
                                 std::int32_t uniform_driver) const {
  std::uint64_t overlap = bus_word0 & bus0_;
  if (bus_mask_.size() > 1) {
    const auto mask = set.bus_mask(i);
    for (std::size_t w = 1; w < mask.size(); ++w) {
      overlap |= mask[w] & bus_mask_[w];
    }
  }
  if (overlap == 0) return true;
  if (uniform_driver >= 0 && uniform_driver == driver_state_) return true;
  for (const BusBit& bit : set.bus_bits(i)) {
    const auto line = static_cast<std::size_t>(bit.line);
    if (bus_epoch_[line] == epoch_ && bus_driver_[line] != bit.driver_core) {
      return false;
    }
  }
  return true;
}

void PackedAccumulator::absorb(const PackedPatternSet& set, std::size_t i) {
  SITAM_DCHECK_MSG(fits(set, i), "absorb precondition violated");
  for (const PackedSlot& s : set.slots(i)) {
    // Canonical slots (value/active ⊆ care) make plain ORs correct: on
    // shared care bits fits() guarantees equality.
    PlaneWord& p = planes_[s.word];
    p.care |= s.care;
    p.value |= s.value;
    p.active |= s.active;
  }
  summary_ |= set.summary(i);

  const auto mask = set.bus_mask(i);
  for (std::size_t w = 0; w < mask.size(); ++w) bus_mask_[w] |= mask[w];
  if (!bus_mask_.empty()) bus0_ = bus_mask_[0];
  for (const BusBit& bit : set.bus_bits(i)) {
    const auto line = static_cast<std::size_t>(bit.line);
    if (bus_epoch_[line] != epoch_) {
      bus_epoch_[line] = epoch_;
      bus_driver_[line] = bit.driver_core;
    }
  }
  const int candidate_driver = set.uniform_driver(i);
  if (candidate_driver != kNoBusDriver) {
    driver_state_ = driver_state_ == kNoBusDriver ||
                            driver_state_ == candidate_driver
                        ? candidate_driver
                        : kMixedBusDrivers;
  }
}

bool PackedAccumulator::contains(const PackedPatternSet& set,
                                 std::size_t i) const {
  SITAM_DCHECK(set.layout() == layout_);
  for (const PackedSlot& s : set.slots(i)) {
    const PlaneWord& p = planes_[s.word];
    if ((s.care & ~p.care) != 0) return false;
    if ((s.care & ((s.value ^ p.value) | (s.active ^ p.active))) != 0) {
      return false;
    }
  }
  const auto mask = set.bus_mask(i);
  for (std::size_t w = 0; w < mask.size(); ++w) {
    if ((mask[w] & ~bus_mask_[w]) != 0) return false;
  }
  for (const BusBit& bit : set.bus_bits(i)) {
    const auto line = static_cast<std::size_t>(bit.line);
    // Occupancy is a subset of ours, so the line's driver entry is current.
    SITAM_DCHECK(bus_epoch_[line] == epoch_);
    if (bus_driver_[line] != bit.driver_core) return false;
  }
  return true;
}

SiPattern PackedAccumulator::to_pattern() const {
  SiPattern p;
  for (std::size_t w = 0; w < planes_.size(); ++w) {
    std::uint64_t remaining = planes_[w].care;
    while (remaining != 0) {
      const int bit = std::countr_zero(remaining);
      remaining &= remaining - 1;
      const int terminal = static_cast<int>(w * 64) + bit;
      const bool value = ((planes_[w].value >> bit) & 1u) != 0;
      const bool active = ((planes_[w].active >> bit) & 1u) != 0;
      p.set(terminal, decode_planes(value, active));
    }
  }
  for (std::size_t w = 0; w < bus_mask_.size(); ++w) {
    std::uint64_t remaining = bus_mask_[w];
    while (remaining != 0) {
      const int bit = std::countr_zero(remaining);
      remaining &= remaining - 1;
      const auto line = w * 64 + static_cast<std::size_t>(bit);
      SITAM_DCHECK(bus_epoch_[line] == epoch_);
      p.set_bus(static_cast<int>(line), bus_driver_[line]);
    }
  }
  return p;
}

}  // namespace sitam
