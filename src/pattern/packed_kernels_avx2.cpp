// AVX2 plane-sweep kernels (see the kernel-table contract in packed.h).
//
// The scalar probes are 64-bit word-parallel per slot; these kernels widen
// across slots, probing four at a time. Each slot needs the (care, value,
// active) triple of its plane word; PlaneWord is exactly three u64s, so a
// lane's planes sit at byte offset word*24 and one vpgatherqq per plane
// pulls all four lanes. The conflict formula then runs lane-parallel:
//
//   conflict = care & p.care & ((value ^ p.value) | (active ^ p.active))
//
// and a single vptest decides the probe. A missing inlined slot carries
// care 0 and word 0 — its lane gathers planes[0] (always allocated) and
// contributes nothing, exactly like the scalar branch-free pairs.
//
// The vector probe evaluates all four slots where the scalar kernel early-
// exits after a conflicting pair; only the returned boolean is observable,
// so the decisions — and therefore compaction output — stay byte-identical
// (packed_kernels_test enforces this against the scalar kernels).
//
// This TU is compiled with -mavx2 only when SITAM_SIMD is ON for an x86-64
// target; callers reach it through the dispatch table, which checks
// __builtin_cpu_supports("avx2") first. Raw intrinsics are sanctioned here
// and in packed_kernels_neon.cpp only (lint rule SL016).
#if defined(SITAM_SIMD_AVX2)

#include <immintrin.h>

#include <cstdint>

#include "pattern/packed.h"

namespace sitam {

namespace {

static_assert(sizeof(PlaneWord) == 3 * sizeof(std::uint64_t),
              "gather offsets assume densely packed PlaneWord triples");

/// Gathers one plane (selected by `component`: 0 = care, 1 = value,
/// 2 = active) for the four word indices in `idx` (given in u64 units,
/// i.e. word * 3).
inline __m256i gather_plane(const PlaneWord* planes, __m256i idx,
                            int component) {
  const long long* base = reinterpret_cast<const long long*>(planes);
  return _mm256_i64gather_epi64(base + component, idx, 8);
}

/// Lane-parallel conflict formula; true iff any lane conflicts.
inline bool lanes_conflict(__m256i care, __m256i value, __m256i active,
                           const PlaneWord* planes, __m256i idx) {
  const __m256i p_care = gather_plane(planes, idx, 0);
  const __m256i p_value = gather_plane(planes, idx, 1);
  const __m256i p_active = gather_plane(planes, idx, 2);
  const __m256i conflict = _mm256_and_si256(
      _mm256_and_si256(care, p_care),
      _mm256_or_si256(_mm256_xor_si256(value, p_value),
                      _mm256_xor_si256(active, p_active)));
  return _mm256_testz_si256(conflict, conflict) == 0;
}

inline long long ll(std::uint64_t v) { return static_cast<long long>(v); }

}  // namespace

bool packed_avx2_record_conflict(const PackedSweepIndex::Record& r,
                                 const PackedSlot* slot_base,
                                 const PlaneWord* planes) {
  const __m256i idx =
      _mm256_set_epi64x(3LL * r.word[3], 3LL * r.word[2], 3LL * r.word[1],
                        3LL * r.word[0]);
  const __m256i care =
      _mm256_set_epi64x(ll(r.care3), ll(r.care2), ll(r.care1), ll(r.care0));
  const __m256i value = _mm256_set_epi64x(ll(r.value3), ll(r.value2),
                                          ll(r.value1), ll(r.value0));
  const __m256i active = _mm256_set_epi64x(ll(r.active3), ll(r.active2),
                                           ll(r.active1), ll(r.active0));
  if (lanes_conflict(care, value, active, planes, idx)) return true;
  return packed_avx2_slots_conflict(slot_base + r.rest_begin,
                                    slot_base + r.slot_end, planes);
}

bool packed_avx2_slots_conflict(const PackedSlot* s, const PackedSlot* end,
                                const PlaneWord* planes) {
  for (; end - s >= 4; s += 4) {
    const __m256i idx =
        _mm256_set_epi64x(3LL * s[3].word, 3LL * s[2].word, 3LL * s[1].word,
                          3LL * s[0].word);
    const __m256i care = _mm256_set_epi64x(ll(s[3].care), ll(s[2].care),
                                           ll(s[1].care), ll(s[0].care));
    const __m256i value = _mm256_set_epi64x(ll(s[3].value), ll(s[2].value),
                                            ll(s[1].value), ll(s[0].value));
    const __m256i active = _mm256_set_epi64x(ll(s[3].active), ll(s[2].active),
                                             ll(s[1].active), ll(s[0].active));
    if (lanes_conflict(care, value, active, planes, idx)) return true;
  }
  return packed_scalar_slots_conflict(s, end, planes);
}

}  // namespace sitam

#endif  // defined(SITAM_SIMD_AVX2)
