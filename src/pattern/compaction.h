// Vertical SI test compaction: pattern-count reduction (§3).
//
// Finding the minimum compacted set is the NP-complete clique covering
// problem on the pattern-compatibility graph. Two solvers are provided:
//
//  * compact_greedy — the paper's heuristic: take the first uncompacted
//    pattern and merge every following compatible pattern into it, repeat.
//    Implemented with a dense accumulator so each compatibility check costs
//    O(care bits) instead of O(accumulated size); compacting 100k patterns
//    takes seconds.
//
//  * compact_first_fit — a classical clique-cover approximation:
//    Welsh-Powell-style first-fit coloring of the conflict graph. Patterns
//    are processed in descending density (care bits + bus bits) and each
//    goes into the first existing compatible class. Note that *unsorted*
//    first-fit would be pointwise identical to the greedy sweep (class k of
//    first-fit is exactly sweep round k), so the density ordering is what
//    makes this a distinct reference point. Comparable compaction ratios at
//    substantially higher runtime — exactly the trade-off §3 reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pattern/pattern.h"

namespace sitam {

struct CompactionStats {
  std::size_t original_count = 0;
  std::size_t compacted_count = 0;
  double seconds = 0.0;

  [[nodiscard]] double ratio() const {
    return compacted_count == 0
               ? 0.0
               : static_cast<double>(original_count) /
                     static_cast<double>(compacted_count);
  }
};

struct CompactionResult {
  std::vector<SiPattern> patterns;
  CompactionStats stats;
};

/// Paper's greedy sweep. `total_terminals` and `bus_width` size the dense
/// accumulator (use TerminalSpace::total() and the bus width; patterns with
/// ids outside these ranges throw std::out_of_range).
[[nodiscard]] CompactionResult compact_greedy(
    std::span<const SiPattern> patterns, int total_terminals, int bus_width);

/// First-fit clique-cover approximation (reference quality bar).
[[nodiscard]] CompactionResult compact_first_fit(
    std::span<const SiPattern> patterns, int total_terminals, int bus_width);

/// Verifies that `compacted` is a sound compaction of `original`: every
/// original pattern must be *covered by* (i.e. compatible with and contained
/// in) at least one compacted pattern. Returns the index of the first
/// uncovered original pattern, or -1 if all are covered. Used by tests and
/// the compaction study bench.
[[nodiscard]] std::ptrdiff_t first_uncovered(
    std::span<const SiPattern> original,
    std::span<const SiPattern> compacted);

}  // namespace sitam
