// Vertical SI test compaction: pattern-count reduction (§3).
//
// Finding the minimum compacted set is the NP-complete clique covering
// problem on the pattern-compatibility graph. Two solvers are provided,
// both running on the packed bit-plane kernel of packed.h (word-parallel
// compatibility checks, one-AND summary pruning):
//
//  * compact_greedy — the paper's heuristic: take the first uncompacted
//    pattern and merge every following compatible pattern into it, repeat.
//    Candidates are tested against a dense packed accumulator in O(slots)
//    word ops; with CompactionConfig::threads > 1 the per-round sweep is
//    sharded across a thread pool and stays bit-identical to the serial
//    sweep for any thread count (see the merge rule in compaction.cpp).
//
//  * compact_first_fit — a classical clique-cover approximation:
//    Welsh-Powell-style first-fit coloring of the conflict graph. Patterns
//    are processed in descending density (care bits + bus bits, keys
//    precomputed once) and each goes into the first existing compatible
//    class, held as a packed accumulator. Note that *unsorted* first-fit
//    would be pointwise identical to the greedy sweep (class k of
//    first-fit is exactly sweep round k), so the density ordering is what
//    makes this a distinct reference point. Comparable compaction ratios
//    at higher runtime — exactly the trade-off §3 reports.
//
// compact_greedy_reference is the pre-packed sparse sweep, kept verbatim
// as the before/after baseline for BENCH_compaction.json and as the
// equivalence oracle in tests — compact_greedy must reproduce its output
// byte for byte.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pattern/pattern.h"

namespace sitam {

struct CompactionStats {
  std::size_t original_count = 0;
  std::size_t compacted_count = 0;
  double seconds = 0.0;

  [[nodiscard]] double ratio() const {
    return compacted_count == 0
               ? 0.0
               : static_cast<double>(original_count) /
                     static_cast<double>(compacted_count);
  }
};

struct CompactionResult {
  std::vector<SiPattern> patterns;
  CompactionStats stats;
};

/// Knobs for the greedy sweep. The output is bit-identical for every
/// setting — threads only shard a pure candidate filter.
struct CompactionConfig {
  /// Worker threads for the greedy sweep; 1 = serial.
  int threads = 1;
  /// Rounds with fewer remaining candidates than this run serially (the
  /// sharding overhead would dominate). Exposed so tests can force the
  /// parallel path on small inputs.
  std::size_t min_parallel_candidates = 2048;
};

/// Paper's greedy sweep on the packed kernel. `total_terminals` and
/// `bus_width` size the bit-planes (use TerminalSpace::total() and the bus
/// width; patterns with ids outside these ranges throw std::out_of_range).
/// Throws std::invalid_argument for negative dimensions or threads < 1.
[[nodiscard]] CompactionResult compact_greedy(
    std::span<const SiPattern> patterns, int total_terminals, int bus_width,
    const CompactionConfig& config = {});

/// The historical sparse-list sweep (per-care-bit checks against an
/// epoch-stamped dense accumulator). Frozen as the benchmark baseline and
/// the byte-identity oracle for compact_greedy; do not optimize.
[[nodiscard]] CompactionResult compact_greedy_reference(
    std::span<const SiPattern> patterns, int total_terminals, int bus_width);

/// First-fit clique-cover approximation (reference quality bar).
[[nodiscard]] CompactionResult compact_first_fit(
    std::span<const SiPattern> patterns, int total_terminals, int bus_width);

/// Verifies that `compacted` is a sound compaction of `original`: every
/// original pattern must be *covered by* (i.e. compatible with and contained
/// in) at least one compacted pattern. Returns the index of the first
/// uncovered original pattern, or -1 if all are covered. Runs on packed
/// subset checks with summary pruning. Used by tests and the compaction
/// study bench.
[[nodiscard]] std::ptrdiff_t first_uncovered(
    std::span<const SiPattern> original,
    std::span<const SiPattern> compacted);

}  // namespace sitam
