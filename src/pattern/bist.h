// BIST-style hardware pattern generation for interconnect SI test.
//
// §2 of the paper: BIST has been the primary SI test method (LI-BIST and
// friends) — a pseudo-random generator at the driver side of every core
// launches transitions while ILS cells observe the receivers. The paper
// argues against it: per-core hardware generators cannot coordinate the
// arbitrary cross-core coupling neighborhoods of a real SOC floorplan, so
// they under-test (some fault excitations arrive only after very many
// cycles, or never within a budget) and over-test (patterns outside the
// functional space). This module models that alternative: one maximal
// LFSR per core drives the core's WOCs with two-cycle values, and a
// streaming coverage evaluator measures MA fault coverage as a function of
// the cycle budget — reproducing the argument quantitatively.
#pragma once

#include <cstdint>
#include <vector>

#include "interconnect/terminal_space.h"
#include "interconnect/topology.h"
#include "pattern/coverage.h"
#include "pattern/pattern.h"

namespace sitam {

/// Fibonacci LFSR with a maximal-length feedback polynomial for the chosen
/// width (supported widths: 8, 16, 24, 32; others throw).
class Lfsr {
 public:
  /// `seed` must not be all-zero in the low `width` bits (throws).
  Lfsr(int width, std::uint64_t seed);

  [[nodiscard]] int width() const { return width_; }

  /// Advances one cycle and returns the output bit.
  bool next_bit();

  /// Convenience: n output bits packed LSB-first (n <= 64).
  [[nodiscard]] std::uint64_t next_bits(int n);

  /// Current register state (low `width` bits).
  [[nodiscard]] std::uint64_t state() const { return state_; }

 private:
  int width_;
  std::uint64_t taps_;
  std::uint64_t state_;
};

/// One BIST cycle-pair as an SiPattern: every WOC terminal of every core
/// carries a value decoded from its core's LFSR (2 bits per terminal:
/// 00 -> stable 0, 11 -> stable 1, 01 -> rise, 10 -> fall). Patterns are
/// fully specified — hardware generators have no don't-cares, which is
/// precisely why they cannot be compacted.
[[nodiscard]] std::vector<SiPattern> generate_bist_patterns(
    const TerminalSpace& terminals, int cycles, std::uint64_t seed);

/// Multiple-input signature register (MISR) — the response-compaction half
/// of a BIST pair. Parallel inputs XOR into the Galois LFSR state each
/// cycle; after the session the signature is compared against the golden
/// value. Same maximal polynomials as Lfsr.
class Misr {
 public:
  /// Width in {8, 16, 24, 32}; the register starts at all-zero (unlike a
  /// pattern LFSR, a MISR may pass through zero).
  explicit Misr(int width);

  [[nodiscard]] int width() const { return width_; }

  /// Absorbs one cycle of parallel response bits (low `width` bits used).
  void absorb(std::uint64_t response_bits);

  [[nodiscard]] std::uint64_t signature() const { return state_; }

 private:
  int width_;
  std::uint64_t taps_;
  std::uint64_t state_ = 0;
};

/// MA fault coverage of the BIST sequence after each checkpoint (cycle
/// counts, ascending). Streaming: memory is O(faults), not O(cycles).
struct BistCoveragePoint {
  int cycles = 0;
  CoverageReport coverage;
};
[[nodiscard]] std::vector<BistCoveragePoint> bist_ma_coverage_curve(
    const Topology& topology, const TerminalSpace& terminals, int window,
    const std::vector<int>& checkpoints, std::uint64_t seed);

}  // namespace sitam
