#include "pattern/coverage.h"

#include <stdexcept>

namespace sitam {

SigValue ma_victim_value(MaFaultType type) noexcept {
  switch (type) {
    case MaFaultType::kPositiveGlitch:
      return SigValue::kStable0;
    case MaFaultType::kNegativeGlitch:
      return SigValue::kStable1;
    case MaFaultType::kRisingDelay:
    case MaFaultType::kRisingSpeedup:
      return SigValue::kRise;
    case MaFaultType::kFallingDelay:
    case MaFaultType::kFallingSpeedup:
      return SigValue::kFall;
  }
  return SigValue::kDontCare;
}

SigValue ma_aggressor_value(MaFaultType type) noexcept {
  switch (type) {
    case MaFaultType::kPositiveGlitch:
    case MaFaultType::kFallingDelay:
    case MaFaultType::kRisingSpeedup:
      return SigValue::kRise;
    case MaFaultType::kNegativeGlitch:
    case MaFaultType::kRisingDelay:
    case MaFaultType::kFallingSpeedup:
      return SigValue::kFall;
  }
  return SigValue::kDontCare;
}

std::vector<MaFault> all_ma_faults(const Topology& topology) {
  static constexpr MaFaultType kTypes[] = {
      MaFaultType::kPositiveGlitch, MaFaultType::kNegativeGlitch,
      MaFaultType::kRisingDelay,    MaFaultType::kFallingDelay,
      MaFaultType::kRisingSpeedup,  MaFaultType::kFallingSpeedup,
  };
  std::vector<MaFault> faults;
  faults.reserve(topology.nets.size() * 6);
  for (const Net& net : topology.nets) {
    for (const MaFaultType type : kTypes) {
      faults.push_back(MaFault{net.id, type});
    }
  }
  return faults;
}

bool excites(const SiPattern& pattern, const Topology& topology,
             const MaFault& fault, int window) {
  if (fault.net < 0 ||
      fault.net >= static_cast<int>(topology.nets.size())) {
    throw std::out_of_range("excites: bad net id " +
                            std::to_string(fault.net));
  }
  const int victim_terminal =
      topology.nets[static_cast<std::size_t>(fault.net)].driver_terminal;
  if (pattern.at(victim_terminal) != ma_victim_value(fault.type)) {
    return false;
  }
  const SigValue aggressor = ma_aggressor_value(fault.type);
  for (const int neighbor : topology.neighbors(fault.net, window)) {
    const int terminal =
        topology.nets[static_cast<std::size_t>(neighbor)].driver_terminal;
    if (terminal == victim_terminal) continue;  // shared driver terminal
    if (pattern.at(terminal) != aggressor) return false;
  }
  return true;
}

CoverageReport ma_fault_coverage(std::span<const SiPattern> patterns,
                                 const Topology& topology, int window) {
  CoverageReport report;
  for (const MaFault& fault : all_ma_faults(topology)) {
    ++report.total_faults;
    for (const SiPattern& pattern : patterns) {
      if (excites(pattern, topology, fault, window)) {
        ++report.covered_faults;
        break;
      }
    }
  }
  return report;
}

}  // namespace sitam
