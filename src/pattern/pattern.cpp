#include "pattern/pattern.h"

#include <algorithm>
#include <stdexcept>

namespace sitam {

void SiPattern::set(int terminal, SigValue value) {
  if (terminal < 0) {
    throw std::invalid_argument("SiPattern::set: negative terminal id");
  }
  const auto it = std::lower_bound(
      assignments_.begin(), assignments_.end(), terminal,
      [](const auto& entry, int t) { return entry.first < t; });
  const bool present = it != assignments_.end() && it->first == terminal;
  if (value == SigValue::kDontCare) {
    if (present) assignments_.erase(it);
    return;
  }
  if (present) {
    it->second = value;
  } else {
    assignments_.insert(it, {terminal, value});
  }
}

SigValue SiPattern::at(int terminal) const {
  const auto it = std::lower_bound(
      assignments_.begin(), assignments_.end(), terminal,
      [](const auto& entry, int t) { return entry.first < t; });
  if (it != assignments_.end() && it->first == terminal) return it->second;
  return SigValue::kDontCare;
}

void SiPattern::set_bus(int line, int driver_core) {
  if (line < 0) {
    throw std::invalid_argument("SiPattern::set_bus: negative line");
  }
  const auto it = std::lower_bound(
      bus_bits_.begin(), bus_bits_.end(), line,
      [](const BusBit& bit, int l) { return bit.line < l; });
  if (it != bus_bits_.end() && it->line == line) {
    if (it->driver_core != driver_core) {
      throw std::logic_error(
          "SiPattern::set_bus: line already occupied by another core");
    }
    return;
  }
  bus_bits_.insert(it, BusBit{line, driver_core});
}

std::vector<int> SiPattern::care_cores(const TerminalSpace& terminals) const {
  std::vector<int> cores;
  for (const auto& [terminal, value] : assignments_) {
    (void)value;
    cores.push_back(terminals.core_of(terminal));
  }
  for (const BusBit& bit : bus_bits_) cores.push_back(bit.driver_core);
  std::sort(cores.begin(), cores.end());
  cores.erase(std::unique(cores.begin(), cores.end()), cores.end());
  return cores;
}

namespace {

/// Two-pointer conflict scan over two sorted assignment lists.
bool signals_compatible(
    std::span<const std::pair<int, SigValue>> a,
    std::span<const std::pair<int, SigValue>> b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      ++i;
    } else if (a[i].first > b[j].first) {
      ++j;
    } else {
      if (a[i].second != b[j].second) return false;
      ++i;
      ++j;
    }
  }
  return true;
}

/// Binary-search variant: probe the (few) entries of `small` in `large`.
/// Asymptotically better when |large| >> |small|.
bool signals_compatible_probe(
    std::span<const std::pair<int, SigValue>> large,
    std::span<const std::pair<int, SigValue>> small) {
  for (const auto& [terminal, value] : small) {
    const auto it = std::lower_bound(
        large.begin(), large.end(), terminal,
        [](const auto& entry, int t) { return entry.first < t; });
    if (it != large.end() && it->first == terminal && it->second != value) {
      return false;
    }
  }
  return true;
}

bool bus_compatible(std::span<const BusBit> a, std::span<const BusBit> b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].line < b[j].line) {
      ++i;
    } else if (a[i].line > b[j].line) {
      ++j;
    } else {
      if (a[i].driver_core != b[j].driver_core) return false;
      ++i;
      ++j;
    }
  }
  return true;
}

}  // namespace

bool SiPattern::compatible(const SiPattern& a, const SiPattern& b) {
  const auto& sa = a.assignments_;
  const auto& sb = b.assignments_;
  bool signals_ok;
  // Pick the cheaper scan: linear merge for similar sizes, probing when one
  // side is much larger (the accumulating pattern during compaction).
  if (sa.size() > 8 * sb.size() + 16) {
    signals_ok = signals_compatible_probe(sa, sb);
  } else if (sb.size() > 8 * sa.size() + 16) {
    signals_ok = signals_compatible_probe(sb, sa);
  } else {
    signals_ok = signals_compatible(sa, sb);
  }
  return signals_ok && bus_compatible(a.bus_bits_, b.bus_bits_);
}

bool SiPattern::try_absorb(const SiPattern& other) {
  if (!compatible(*this, other)) return false;
  // Merge sorted assignment lists.
  std::vector<std::pair<int, SigValue>> merged;
  merged.reserve(assignments_.size() + other.assignments_.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < assignments_.size() || j < other.assignments_.size()) {
    if (j >= other.assignments_.size() ||
        (i < assignments_.size() &&
         assignments_[i].first <= other.assignments_[j].first)) {
      if (j < other.assignments_.size() &&
          assignments_[i].first == other.assignments_[j].first) {
        ++j;  // identical value (checked by compatible)
      }
      merged.push_back(assignments_[i++]);
    } else {
      merged.push_back(other.assignments_[j++]);
    }
  }
  assignments_ = std::move(merged);

  std::vector<BusBit> merged_bus;
  merged_bus.reserve(bus_bits_.size() + other.bus_bits_.size());
  i = 0;
  j = 0;
  while (i < bus_bits_.size() || j < other.bus_bits_.size()) {
    if (j >= other.bus_bits_.size() ||
        (i < bus_bits_.size() &&
         bus_bits_[i].line <= other.bus_bits_[j].line)) {
      if (j < other.bus_bits_.size() &&
          bus_bits_[i].line == other.bus_bits_[j].line) {
        ++j;
      }
      merged_bus.push_back(bus_bits_[i++]);
    } else {
      merged_bus.push_back(other.bus_bits_[j++]);
    }
  }
  bus_bits_ = std::move(merged_bus);
  return true;
}

std::string SiPattern::render(int total_terminals, int bus_width) const {
  std::string out(static_cast<std::size_t>(total_terminals), 'x');
  for (const auto& [terminal, value] : assignments_) {
    if (terminal < total_terminals) {
      out[static_cast<std::size_t>(terminal)] = to_char(value);
    }
  }
  out += " | ";
  std::string bus(static_cast<std::size_t>(bus_width), 'x');
  for (const BusBit& bit : bus_bits_) {
    if (bit.line < bus_width) bus[static_cast<std::size_t>(bit.line)] = '1';
  }
  out += bus;
  return out;
}

}  // namespace sitam
