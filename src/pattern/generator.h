// SI test pattern generators.
//
// Three generators are provided:
//
//  * generate_random_patterns — the workload of the paper's §5 experiments:
//    one victim, Na ∈ [2,6] random aggressors with at most two outside the
//    victim core boundary, and a 32-bit shared bus occupied with
//    probability 50% (1..Na postfix bits).
//
//  * generate_ma_patterns — the maximal-aggressor fault model [Cuviello et
//    al., ICCAD'99]: 6 vector pairs per victim net (positive/negative
//    glitch, rising/falling delay, rising/falling speedup), all aggressors
//    transitioning in the same direction.
//
//  * generate_mt_patterns — the *reduced* multiple-transition fault model
//    [Tehranipour et al., TCAD'04]: all 4 victim behaviours times all
//    2^(2k) transition combinations on the 2k neighbors within locality
//    factor k, i.e. ~2^(2k+2) vector pairs per victim.
#pragma once

#include <cstdint>
#include <vector>

#include "interconnect/terminal_space.h"
#include "interconnect/topology.h"
#include "pattern/pattern.h"
#include "util/rng.h"

namespace sitam {

struct RandomPatternConfig {
  int min_aggressors = 2;
  int max_aggressors = 6;
  /// "at most two aggressors are outside of the victim core boundary".
  /// The actual count is uniform in [min_external, min(max_external, Na)];
  /// inter-core routing makes at least one external aggressor typical.
  int min_external_aggressors = 1;
  int max_external_aggressors = 2;
  /// External aggressors come from cores within ±ring of the victim core
  /// in the module order (a 1-D floorplan proxy: only physically adjacent
  /// cores share routing regions, so only they couple). 0 = any core (the
  /// default — clustering externals makes patterns inside a group conflict
  /// more, which costs vertical compaction more than the shorter lengths
  /// gain; see the workload_models bench to experiment).
  int external_core_ring = 0;
  /// Aggressors inside the victim core are drawn from the +-window bit
  /// neighborhood of the victim terminal ("a victim interconnect is mainly
  /// affected by its neighboring aggressors", §3). 0 = unrestricted.
  int locality_window = 16;
  /// Hold the non-aggressor neighbors inside the locality window quiescent
  /// (stable 0). A deterministic noise measurement requires controlling the
  /// whole coupling neighborhood — an unspecified neighbor could mask or
  /// inflate the glitch/delay. Densifies patterns and hence bounds how far
  /// the vertical compaction can go, exactly as in the MA/MT models where
  /// every line of the neighborhood carries a specified value.
  bool quiet_neighbors = true;
  int bus_width = 32;
  double bus_use_probability = 0.5;
};

/// Generates `count` random SI vector pairs per §5 of the paper.
/// Throws std::invalid_argument on a degenerate configuration (fewer than
/// two cores, non-positive counts, bad probability...).
[[nodiscard]] std::vector<SiPattern> generate_random_patterns(
    const TerminalSpace& terminals, std::int64_t count,
    const RandomPatternConfig& config, Rng& rng);

struct TopologyPatternConfig {
  /// Routing-slot window around the victim net; all nets inside get values.
  int window = 3;
  /// Probability that a specified neighbor transitions (vs idling quiet).
  double aggressor_probability = 0.6;
  double bus_use_probability = 0.5;
  int max_bus_bits = 6;
};

/// Random SI vector pairs derived from an explicit interconnect topology
/// (the physically-grounded variant of generate_random_patterns): the
/// victim is a random net, every net within the routing window gets a
/// value — a transition with aggressor_probability, else the quiet idle
/// level — and aggressors naturally cross core boundaries wherever the
/// routing interleaves different cores' nets (Fig. 1). Bus lines, when
/// used, are driven from the victim's core.
[[nodiscard]] std::vector<SiPattern> generate_topology_patterns(
    const Topology& topology, const TerminalSpace& terminals,
    std::int64_t count, const TopologyPatternConfig& config, Rng& rng);

/// MA-model pattern set: 6 patterns per net in `topology`, aggressors being
/// the nets within ±`aggressor_window` routing slots. Patterns whose victim
/// and aggressor nets collide on a driver terminal keep the victim value
/// (first-write-wins on aggressors).
[[nodiscard]] std::vector<SiPattern> generate_ma_patterns(
    const Topology& topology, const TerminalSpace& terminals,
    int aggressor_window);

/// Reduced-MT-model pattern set with locality factor `k` (the 2k nearest
/// nets act as aggressors). Throws std::invalid_argument if k < 0 or
/// k > 12 (pattern count would overflow any practical budget).
[[nodiscard]] std::vector<SiPattern> generate_mt_patterns(
    const Topology& topology, const TerminalSpace& terminals, int k);

/// Closed-form pattern-pair counts used by the §2 motivation discussion.
[[nodiscard]] constexpr std::int64_t ma_pattern_count(
    std::int64_t victims) noexcept {
  return 6 * victims;
}
[[nodiscard]] constexpr std::int64_t mt_pattern_count(std::int64_t victims,
                                                      int k) noexcept {
  return victims * (std::int64_t{1} << (2 * k + 2));
}

}  // namespace sitam
