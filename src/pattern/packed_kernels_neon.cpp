// NEON plane-sweep kernels (see the kernel-table contract in packed.h).
//
// NEON registers are 128-bit, so these kernels probe slot *pairs*: the
// sweep record's two inlined pairs map directly onto two vector probes,
// and the rest walk advances two slots per iteration. The conflict
// formula runs lane-parallel, like the AVX2 kernels but at half the
// width; NEON has no gather, so plane words load lane-by-lane (they are
// scattered anyway — gathers buy nothing on two lanes).
//
// Decisions are byte-identical to the scalar kernels by the same argument
// as the AVX2 TU: only the returned boolean is observable.
//
// This TU is compiled only when SITAM_SIMD is ON for an aarch64 target
// (NEON is baseline there — no runtime feature check needed). Raw
// intrinsics are sanctioned here and in packed_kernels_avx2.cpp only
// (lint rule SL016).
#if defined(SITAM_SIMD_NEON)

#include <arm_neon.h>

#include <cstdint>

#include "pattern/packed.h"

namespace sitam {

namespace {

inline uint64x2_t pair(std::uint64_t lo, std::uint64_t hi) {
  return vcombine_u64(vcreate_u64(lo), vcreate_u64(hi));
}

/// Lane-parallel conflict formula over one slot pair; true iff either
/// lane conflicts.
inline bool lanes_conflict(uint64x2_t care, uint64x2_t value,
                           uint64x2_t active, uint64x2_t p_care,
                           uint64x2_t p_value, uint64x2_t p_active) {
  const uint64x2_t conflict =
      vandq_u64(vandq_u64(care, p_care),
                vorrq_u64(veorq_u64(value, p_value),
                          veorq_u64(active, p_active)));
  return (vgetq_lane_u64(conflict, 0) | vgetq_lane_u64(conflict, 1)) != 0;
}

}  // namespace

bool packed_neon_record_conflict(const PackedSweepIndex::Record& r,
                                 const PackedSlot* slot_base,
                                 const PlaneWord* planes) {
  // Missing inlined slots carry care 0 and word 0 (planes[0] is always
  // allocated), matching the scalar branch-free pairs.
  const PlaneWord& p0 = planes[r.word[0]];
  const PlaneWord& p1 = planes[r.word[1]];
  if (lanes_conflict(pair(r.care0, r.care1), pair(r.value0, r.value1),
                     pair(r.active0, r.active1), pair(p0.care, p1.care),
                     pair(p0.value, p1.value), pair(p0.active, p1.active))) {
    return true;
  }
  const PlaneWord& p2 = planes[r.word[2]];
  const PlaneWord& p3 = planes[r.word[3]];
  if (lanes_conflict(pair(r.care2, r.care3), pair(r.value2, r.value3),
                     pair(r.active2, r.active3), pair(p2.care, p3.care),
                     pair(p2.value, p3.value), pair(p2.active, p3.active))) {
    return true;
  }
  return packed_neon_slots_conflict(slot_base + r.rest_begin,
                                    slot_base + r.slot_end, planes);
}

bool packed_neon_slots_conflict(const PackedSlot* s, const PackedSlot* end,
                                const PlaneWord* planes) {
  for (; end - s >= 2; s += 2) {
    const PlaneWord& pa = planes[s[0].word];
    const PlaneWord& pb = planes[s[1].word];
    if (lanes_conflict(pair(s[0].care, s[1].care),
                       pair(s[0].value, s[1].value),
                       pair(s[0].active, s[1].active), pair(pa.care, pb.care),
                       pair(pa.value, pb.value),
                       pair(pa.active, pb.active))) {
      return true;
    }
  }
  return packed_scalar_slots_conflict(s, end, planes);
}

}  // namespace sitam

#endif  // defined(SITAM_SIMD_NEON)
