// Sparse SI test pattern (one vector pair) plus the shared-bus postfix.
//
// Patterns assign values to a handful of driver-side terminals (the victim
// and its aggressors), so they are stored sparsely as sorted
// (terminal, value) lists. The bus postfix of Table 1 is a list of occupied
// bus lines; each occupied line remembers the core boundary that triggers
// it, because patterns driving the *same* bus line from *different* core
// boundaries must never be compacted together (§3).
//
// The sparse form is the mutation-friendly builder representation; the
// compaction kernels batch-convert pattern sets into the word-parallel
// bit-plane form of packed.h, which answers compatible() in a few 64-bit
// ops instead of a sorted-list walk.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "interconnect/terminal_space.h"
#include "pattern/value.h"

namespace sitam {

/// One occupied shared-bus line in a pattern's postfix.
struct BusBit {
  int line = 0;         ///< Bus line index, 0-based.
  int driver_core = 0;  ///< Core boundary that triggers the line.

  friend bool operator==(const BusBit&, const BusBit&) = default;
};

class SiPattern {
 public:
  /// Assigns `value` to `terminal`; assigning kDontCare erases the entry.
  /// Throws std::invalid_argument for a negative terminal id.
  void set(int terminal, SigValue value);

  /// Value at `terminal` (kDontCare when unassigned).
  [[nodiscard]] SigValue at(int terminal) const;

  /// Marks bus `line` as occupied, triggered from `driver_core`.
  /// Re-marking with the same driver is idempotent; a different driver
  /// throws std::logic_error (a single pattern has one driver per line).
  void set_bus(int line, int driver_core);

  [[nodiscard]] std::span<const std::pair<int, SigValue>> assignments()
      const {
    return assignments_;
  }
  [[nodiscard]] std::span<const BusBit> bus_bits() const { return bus_bits_; }

  /// Number of assigned (non-don't-care) terminals.
  [[nodiscard]] int care_count() const {
    return static_cast<int>(assignments_.size());
  }
  [[nodiscard]] bool empty() const {
    return assignments_.empty() && bus_bits_.empty();
  }

  /// Sorted, de-duplicated list of cores whose wrapper boundaries this
  /// pattern loads: owners of assigned terminals plus bus drivers.
  [[nodiscard]] std::vector<int> care_cores(
      const TerminalSpace& terminals) const;

  /// True iff the two patterns can be compacted into one (§3): no terminal
  /// carries conflicting values and no bus line is triggered from two
  /// different core boundaries.
  [[nodiscard]] static bool compatible(const SiPattern& a, const SiPattern& b);

  /// Merges `other` into this pattern if compatible; returns false (and
  /// leaves this pattern unchanged) otherwise.
  bool try_absorb(const SiPattern& other);

  /// Table-1-style rendering: one char per terminal in [0, total), then
  /// " | " and one char per bus line ('1' occupied / 'x' free).
  [[nodiscard]] std::string render(int total_terminals, int bus_width) const;

  friend bool operator==(const SiPattern&, const SiPattern&) = default;

 private:
  std::vector<std::pair<int, SigValue>> assignments_;  // sorted by terminal
  std::vector<BusBit> bus_bits_;                       // sorted by line
};

}  // namespace sitam
