// The 5-valued SI test pattern alphabet of Table 1.
//
// Each core output terminal in a test vector *pair* is either a don't-care,
// held stable at 0/1 across the two consecutive cycles, or makes a positive
// (rise) / negative (fall) transition.
#pragma once

#include <cstdint>

namespace sitam {

enum class SigValue : std::uint8_t {
  kDontCare = 0,  ///< 'x' — terminal not involved in this pattern.
  kStable0,       ///< '0' — stays low over both cycles.
  kStable1,       ///< '1' — stays high over both cycles.
  kRise,          ///< '↑' — positive transition.
  kFall,          ///< '↓' — negative transition.
};

/// True iff the two values can coexist on one terminal in a compacted
/// pattern (one is don't-care, or they are identical).
[[nodiscard]] constexpr bool compatible(SigValue a, SigValue b) noexcept {
  return a == SigValue::kDontCare || b == SigValue::kDontCare || a == b;
}

/// Intersection of two compatible values (the non-don't-care one).
[[nodiscard]] constexpr SigValue merge(SigValue a, SigValue b) noexcept {
  return a == SigValue::kDontCare ? b : a;
}

/// ASCII rendering used by the Table 1 printer: x 0 1 ^ v.
[[nodiscard]] constexpr char to_char(SigValue v) noexcept {
  switch (v) {
    case SigValue::kDontCare:
      return 'x';
    case SigValue::kStable0:
      return '0';
    case SigValue::kStable1:
      return '1';
    case SigValue::kRise:
      return '^';
    case SigValue::kFall:
      return 'v';
  }
  return '?';
}

/// True for the two transition values.
[[nodiscard]] constexpr bool is_transition(SigValue v) noexcept {
  return v == SigValue::kRise || v == SigValue::kFall;
}

}  // namespace sitam
