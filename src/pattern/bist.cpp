#include "pattern/bist.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace sitam {

namespace {

/// Maximal-length feedback masks (Galois form): taps 8,6,5,4 / 16,15,13,4 /
/// 24,23,22,17 / 32,22,2,1 — the classic table entries.
std::uint64_t taps_for_width(int width) {
  switch (width) {
    case 8:
      return 0xB8ULL;
    case 16:
      return 0xB400ULL;
    case 24:
      return 0xE10000ULL;
    case 32:
      return 0x80200003ULL;
    default:
      throw std::invalid_argument("Lfsr: unsupported width " +
                                  std::to_string(width));
  }
}

SigValue decode(std::uint64_t two_bits) {
  switch (two_bits & 3) {
    case 0:
      return SigValue::kStable0;
    case 3:
      return SigValue::kStable1;
    case 1:
      return SigValue::kRise;
    default:
      return SigValue::kFall;
  }
}

/// Per-core LFSR bank producing one SigValue per terminal per cycle.
class BistBank {
 public:
  BistBank(const TerminalSpace& terminals, std::uint64_t seed)
      : terminals_(&terminals) {
    lfsrs_.reserve(static_cast<std::size_t>(terminals.core_count()));
    for (int core = 0; core < terminals.core_count(); ++core) {
      // Distinct nonzero seeds per core.
      std::uint64_t core_seed = seed ^ (0x9e3779b97f4a7c15ULL *
                                        static_cast<std::uint64_t>(core + 1));
      if ((core_seed & 0xffffffffULL) == 0) core_seed = 1;
      lfsrs_.emplace_back(32, core_seed);
    }
  }

  /// Values for all terminals of one cycle, indexed by terminal id.
  void next_cycle(std::vector<SigValue>& values) {
    values.resize(static_cast<std::size_t>(terminals_->total()));
    for (int core = 0; core < terminals_->core_count(); ++core) {
      const int first = terminals_->first_terminal(core);
      const int woc = terminals_->woc(core);
      for (int bit = 0; bit < woc; ++bit) {
        values[static_cast<std::size_t>(first + bit)] =
            decode(lfsrs_[static_cast<std::size_t>(core)].next_bits(2));
      }
    }
  }

 private:
  const TerminalSpace* terminals_;
  std::vector<Lfsr> lfsrs_;
};

}  // namespace

Lfsr::Lfsr(int width, std::uint64_t seed)
    : width_(width), taps_(taps_for_width(width)) {
  const std::uint64_t mask =
      width == 64 ? ~0ULL : ((1ULL << width) - 1);
  state_ = seed & mask;
  if (state_ == 0) {
    throw std::invalid_argument("Lfsr: seed must be nonzero in the low " +
                                std::to_string(width) + " bits");
  }
}

bool Lfsr::next_bit() {
  const bool out = (state_ & 1) != 0;
  state_ >>= 1;
  if (out) state_ ^= taps_;
  return out;
}

std::uint64_t Lfsr::next_bits(int n) {
  SITAM_CHECK_MSG(n >= 0 && n <= 64, "Lfsr::next_bits: bad n " << n);
  std::uint64_t out = 0;
  for (int i = 0; i < n; ++i) {
    out |= static_cast<std::uint64_t>(next_bit()) << i;
  }
  return out;
}

Misr::Misr(int width) : width_(width), taps_(taps_for_width(width)) {}

void Misr::absorb(std::uint64_t response_bits) {
  const std::uint64_t mask =
      width_ == 64 ? ~0ULL : ((1ULL << width_) - 1);
  // Galois step, then XOR the parallel response in.
  const bool out = (state_ & 1) != 0;
  state_ >>= 1;
  if (out) state_ ^= taps_;
  state_ = (state_ ^ response_bits) & mask;
}

std::vector<SiPattern> generate_bist_patterns(const TerminalSpace& terminals,
                                              int cycles,
                                              std::uint64_t seed) {
  if (cycles < 0) {
    throw std::invalid_argument("generate_bist_patterns: negative cycles");
  }
  BistBank bank(terminals, seed);
  std::vector<SiPattern> patterns;
  patterns.reserve(static_cast<std::size_t>(cycles));
  std::vector<SigValue> values;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    bank.next_cycle(values);
    SiPattern p;
    for (int t = 0; t < terminals.total(); ++t) {
      p.set(t, values[static_cast<std::size_t>(t)]);
    }
    patterns.push_back(std::move(p));
  }
  return patterns;
}

std::vector<BistCoveragePoint> bist_ma_coverage_curve(
    const Topology& topology, const TerminalSpace& terminals, int window,
    const std::vector<int>& checkpoints, std::uint64_t seed) {
  std::vector<int> sorted = checkpoints;
  std::sort(sorted.begin(), sorted.end());
  for (const int c : sorted) {
    if (c < 0) {
      throw std::invalid_argument(
          "bist_ma_coverage_curve: negative checkpoint");
    }
  }

  const auto faults = all_ma_faults(topology);
  std::vector<bool> covered(faults.size(), false);
  std::int64_t covered_count = 0;

  // Per-net neighbor terminal lists, precomputed once (the cycle loop is
  // hot).
  std::vector<std::vector<int>> neighbor_terminals(topology.nets.size());
  for (std::size_t net = 0; net < topology.nets.size(); ++net) {
    const int victim_terminal = topology.nets[net].driver_terminal;
    for (const int neighbor :
         topology.neighbors(static_cast<int>(net), window)) {
      const int t =
          topology.nets[static_cast<std::size_t>(neighbor)].driver_terminal;
      if (t != victim_terminal) neighbor_terminals[net].push_back(t);
    }
  }

  BistBank bank(terminals, seed);
  std::vector<SigValue> values;
  std::vector<BistCoveragePoint> curve;
  int cycle = 0;
  for (const int checkpoint : sorted) {
    for (; cycle < checkpoint; ++cycle) {
      bank.next_cycle(values);
      for (std::size_t f = 0; f < faults.size(); ++f) {
        if (covered[f]) continue;
        const MaFault& fault = faults[f];
        const int victim_terminal =
            topology.nets[static_cast<std::size_t>(fault.net)]
                .driver_terminal;
        if (values[static_cast<std::size_t>(victim_terminal)] !=
            ma_victim_value(fault.type)) {
          continue;
        }
        const SigValue aggressor = ma_aggressor_value(fault.type);
        bool excited = true;
        for (const int t :
             neighbor_terminals[static_cast<std::size_t>(fault.net)]) {
          if (values[static_cast<std::size_t>(t)] != aggressor) {
            excited = false;
            break;
          }
        }
        if (excited) {
          covered[f] = true;
          ++covered_count;
        }
      }
    }
    BistCoveragePoint point;
    point.cycles = checkpoint;
    point.coverage.total_faults = static_cast<std::int64_t>(faults.size());
    point.coverage.covered_faults = covered_count;
    curve.push_back(point);
  }
  return curve;
}

}  // namespace sitam
