// Packed bit-plane representation of SI test patterns (§3 hot path).
//
// The sparse (terminal, value) lists of SiPattern are ideal for building
// patterns one assignment at a time, but vertical compaction spends its
// whole life asking one question — "can these two patterns coexist?" — tens
// of millions of times. This header packs the 5-valued alphabet of value.h
// into three 64-bit bit-planes over the terminal space so that question
// becomes a handful of word ops:
//
//   care   — bit t set iff terminal t carries a non-don't-care value.
//   value  — final-cycle level: set for kStable1 and kRise.
//   active — transition flag: set for kRise and kFall.
//
// Two patterns conflict on a terminal iff both care about it and either
// plane disagrees:  care_a & care_b & ((val_a^val_b) | (act_a^act_b)).
//
// Patterns are *word-compressed*: only the nonzero care words are
// materialized, as sorted (word index, care, value, active) slots — an SI
// pattern touches a handful of words out of dozens, and streaming 3 dense
// planes per pattern would turn the sweep memory-bound. A one-word summary
// (care-word occupancy OR-folded to 64 bits) rejects disjoint pairs in a
// single AND before any slot is read.
//
// The shared-bus postfix packs into an occupancy mask per pattern plus a
// per-driver disambiguation table: masks answer "any shared line?" in one
// AND, and the (rare) overlapping case resolves drivers through the sorted
// BusBit list — with a uniform-driver fast path, since generated patterns
// drive all their lines from the victim core.
//
// PackedAccumulator is the dense counterpart: full bit-planes for one
// growing compacted pattern (or one first-fit class), against which a
// word-compressed candidate is tested in O(slots).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pattern/pattern.h"
#include "pattern/value.h"
#include "util/check.h"

namespace sitam {

/// Sentinels for the per-pattern uniform-driver fast path.
inline constexpr int kNoBusDriver = -1;     ///< Pattern occupies no bus line.
inline constexpr int kMixedBusDrivers = -2; ///< Lines driven by >1 core.

/// Final-cycle level plane bit for `v` (kStable1 and kRise).
[[nodiscard]] constexpr std::uint64_t value_plane_bit(SigValue v) noexcept {
  return (v == SigValue::kStable1 || v == SigValue::kRise) ? 1u : 0u;
}

/// Transition plane bit for `v` (kRise and kFall).
[[nodiscard]] constexpr std::uint64_t active_plane_bit(SigValue v) noexcept {
  return is_transition(v) ? 1u : 0u;
}

/// Inverse of the (value, active) encoding for a cared-for terminal.
[[nodiscard]] constexpr SigValue decode_planes(bool value,
                                               bool active) noexcept {
  if (active) return value ? SigValue::kRise : SigValue::kFall;
  return value ? SigValue::kStable1 : SigValue::kStable0;
}

/// Dimensions of the packed planes. Word counts are derived, not stored,
/// so a layout is two ints and can be passed by value.
struct PackedLayout {
  int total_terminals = 0;
  int bus_width = 0;

  [[nodiscard]] int signal_words() const noexcept {
    return (total_terminals + 63) / 64;
  }
  [[nodiscard]] int bus_words() const noexcept {
    return (bus_width + 63) / 64;
  }

  friend bool operator==(const PackedLayout&, const PackedLayout&) = default;
};

/// One nonzero 64-terminal chunk of a pattern's three signal planes.
struct PackedSlot {
  std::uint32_t word = 0;     ///< Plane word index (terminals [64w, 64w+64)).
  std::uint64_t care = 0;
  std::uint64_t value = 0;    ///< Canonical: value ⊆ care.
  std::uint64_t active = 0;   ///< Canonical: active ⊆ care.
};

/// Per-pattern hot metadata, consolidated into one 32-byte record so the
/// sweep's reject path touches a single cache line per candidate: the
/// folded care summary, bus occupancy word 0 (the whole mask for the
/// ubiquitous bus_width <= 64 case), the slot range, and the uniform
/// driver for the bus fast path.
struct PackedHeader {
  std::uint64_t summary = 0;
  std::uint64_t bus_word0 = 0;
  std::uint32_t slot_begin = 0;
  std::uint32_t slot_end = 0;
  std::int32_t uniform_driver = kNoBusDriver;
};

/// An immutable batch of patterns packed into word-compressed bit-planes.
///
/// Packing validates every terminal/bus id against the layout up front and
/// throws std::out_of_range (message-compatible with the historical lazy
/// checks of the sparse accumulator) — so the compaction entry points fail
/// on malformed input before any work is done.
class PackedPatternSet {
 public:
  /// Packs `patterns`; O(total assignments). Throws std::invalid_argument
  /// for negative layout dimensions, std::out_of_range for ids outside it.
  PackedPatternSet(std::span<const SiPattern> patterns, PackedLayout layout);

  [[nodiscard]] std::size_t size() const noexcept {
    return headers_.size();
  }
  [[nodiscard]] const PackedLayout& layout() const noexcept {
    return layout_;
  }

  /// Sorted nonzero plane chunks of pattern `i`.
  [[nodiscard]] std::span<const PackedSlot> slots(std::size_t i) const {
    return {slots_.data() + headers_[i].slot_begin,
            slots_.data() + headers_[i].slot_end};
  }
  /// Consolidated hot metadata of pattern `i`.
  [[nodiscard]] const PackedHeader& header(std::size_t i) const {
    return headers_[i];
  }
  /// Backing slot storage; index with header(i).slot_begin/slot_end.
  [[nodiscard]] const PackedSlot* slot_data() const noexcept {
    return slots_.data();
  }
  /// Care-word occupancy folded to one word: bit (w mod 64) is set iff
  /// care word w is nonzero. A zero AND of two summaries proves care
  /// disjointness (equal words fold to equal bits).
  [[nodiscard]] std::uint64_t summary(std::size_t i) const {
    return headers_[i].summary;
  }
  /// Bus occupancy mask words of pattern `i` (layout().bus_words() words).
  [[nodiscard]] std::span<const std::uint64_t> bus_mask(std::size_t i) const {
    const auto w = static_cast<std::size_t>(layout_.bus_words());
    return {bus_masks_.data() + i * w, w};
  }
  /// Sorted occupied bus lines with their drivers (disambiguation table).
  [[nodiscard]] std::span<const BusBit> bus_bits(std::size_t i) const {
    return {bus_bits_.data() + bus_begin_[i],
            bus_bits_.data() + bus_begin_[i + 1]};
  }
  /// Driver id if all of pattern `i`'s bus lines share one driver,
  /// kNoBusDriver if it has none, kMixedBusDrivers otherwise.
  [[nodiscard]] int uniform_driver(std::size_t i) const {
    return headers_[i].uniform_driver;
  }

  /// Word-parallel equivalent of SiPattern::compatible for two members.
  [[nodiscard]] bool compatible(std::size_t i, std::size_t j) const;

 private:
  PackedLayout layout_;
  std::vector<PackedSlot> slots_;           // concatenated, sorted per pattern
  std::vector<PackedHeader> headers_;       // one record per pattern
  std::vector<std::uint64_t> bus_masks_;    // size()*bus_words()
  std::vector<BusBit> bus_bits_;            // concatenated, sorted per pattern
  std::vector<std::uint32_t> bus_begin_;    // size()+1 prefix offsets
};

/// One terminal chunk of the accumulator's three planes, interleaved so a
/// probe of word w touches one ~cache-line-local record instead of three
/// parallel arrays.
struct PlaneWord {
  std::uint64_t care = 0;
  std::uint64_t value = 0;
  std::uint64_t active = 0;
};

/// Sweep-optimized mirror of a PackedPatternSet.
///
/// The greedy sweep rejects ~99.8% of the candidates it probes, and the
/// reject is decided by the candidate's first few slots: on the DAC'07
/// workloads 78% of signal rejects fire on slot 0 and 99.8% within the
/// first four. Walking the shared slot array for that answer costs a
/// dependent (and usually L2/L3-missing) load per candidate; this index
/// instead mirrors each pattern into a fixed 128-byte record — two cache
/// lines — with the first four slots inlined:
///
///   line 0: slots 0–1 planes, all four word indices, rest-of-slots range;
///   line 1: slots 2–3 planes, bus word 0, uniform driver.
///
/// Line 0 alone decides the dominant slot-0/1 rejects, both lines cover
/// everything up to slot 3, and only the rare denser pattern (or a fit)
/// falls through to the shared slot array at `rest_begin`. Records are
/// fixed-size, so the sweep can prefetch() candidates a fixed distance
/// ahead through an arbitrary alive-index list — the access pattern that
/// defeats hardware prefetchers.
///
/// Inlined word indices are 16-bit; the (astronomically large) layouts
/// whose word index overflows 16 bits simply inline fewer slots — the
/// record stays exact, the walk just starts earlier.
///
/// The index borrows the set (non-owning): it must not outlive it.
class PackedSweepIndex {
 public:
  /// One pattern's sweep record; see the class comment for the layout.
  struct alignas(64) Record {
    // line 0 — decides the dominant slot-0/1 rejects
    std::uint64_t care0 = 0, value0 = 0, active0 = 0;
    std::uint64_t care1 = 0, value1 = 0, active1 = 0;
    std::uint16_t word[4] = {0, 0, 0, 0};
    std::uint32_t rest_begin = 0;  ///< First slot not inlined below.
    std::uint32_t slot_end = 0;
    // line 1 — slots 2–3 and the bus fast-path fields
    std::uint64_t care2 = 0, value2 = 0, active2 = 0;
    std::uint64_t care3 = 0, value3 = 0, active3 = 0;
    std::uint64_t bus_word0 = 0;
    std::int32_t uniform_driver = kNoBusDriver;
    std::uint32_t reserved = 0;
  };
  static_assert(sizeof(Record) == 128);

  explicit PackedSweepIndex(const PackedPatternSet& set);

  [[nodiscard]] const PackedPatternSet& set() const noexcept { return *set_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const Record& record(std::size_t i) const {
    return records_[i];
  }

  /// Hints both cache lines of record `i` into cache; issue this a fixed
  /// distance ahead of the probe when sweeping an index list.
  void prefetch(std::size_t i) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    const char* p = reinterpret_cast<const char*>(&records_[i]);
    __builtin_prefetch(p);
    __builtin_prefetch(p + 64);
#else
    (void)i;
#endif
  }

 private:
  const PackedPatternSet* set_;
  std::vector<Record> records_;
};

// ---------------------------------------------------------------------------
// Plane-sweep kernel table (SITAM_SIMD).
//
// The probe loops below are 64-bit word-parallel already; SIMD widens them
// across *slots*: the AVX2 kernels probe all four inlined record slots (and
// rest-walk blocks of four) with one gather per plane, the NEON kernels
// probe slot pairs. Every kernel returns exactly the scalar decision — a
// boolean with no observable early-exit difference — so compaction output
// is byte-identical whichever kernel runs (packed_kernels_test sweeps
// packed_all_kernels() to enforce this).
//
// Dispatch is resolved from CPU features at runtime: SITAM_SIMD=ON builds
// on x86-64 also compile an AVX2 TU (per-file -mavx2) and select it iff the
// running CPU reports AVX2; aarch64 builds compile the NEON TU (NEON is
// baseline there). The scalar kernels are always built; SITAM_SIMD=OFF
// builds bypass the table entirely and inline them directly, keeping the
// codegen of the pre-table implementation.
//
// Raw vector intrinsics are confined to the packed_kernels_{avx2,neon}.cpp
// TUs — lint rule SL016 rejects them anywhere else.

#if defined(SITAM_SIMD_AVX2) || defined(SITAM_SIMD_NEON)
#define SITAM_PACKED_KERNEL_DISPATCH 1
#else
#define SITAM_PACKED_KERNEL_DISPATCH 0
#endif

/// One plane-sweep kernel set. The two entry points cover both probe
/// shapes the sweeps use: a sweep-index record (four inlined slots plus a
/// rest range into the shared slot array) and a raw slot span.
struct PackedKernels {
  const char* name;
  /// True iff any slot of `r` — inlined or in `slot_base[rest_begin,
  /// slot_end)` — conflicts with the dense planes.
  bool (*record_conflict)(const PackedSweepIndex::Record& r,
                          const PackedSlot* slot_base,
                          const PlaneWord* planes);
  /// True iff any slot in [s, end) conflicts with the dense planes.
  bool (*slots_conflict)(const PackedSlot* s, const PackedSlot* end,
                         const PlaneWord* planes);
};

/// The portable kernel set (always compiled).
[[nodiscard]] const PackedKernels& packed_scalar_kernels();
/// The kernel set the running CPU dispatches to.
[[nodiscard]] const PackedKernels& packed_active_kernels();
/// Every kernel set this build + CPU supports, scalar first, the active
/// (widest) set last. Tests sweep this to assert the kernels agree
/// bit-for-bit on randomized layouts.
[[nodiscard]] std::span<const PackedKernels> packed_all_kernels();

#if defined(SITAM_SIMD_AVX2)
/// AVX2 kernel entry points (packed_kernels_avx2.cpp, built with -mavx2).
/// Call only when __builtin_cpu_supports("avx2") — the dispatcher's job.
[[nodiscard]] bool packed_avx2_record_conflict(
    const PackedSweepIndex::Record& r, const PackedSlot* slot_base,
    const PlaneWord* planes);
[[nodiscard]] bool packed_avx2_slots_conflict(const PackedSlot* s,
                                              const PackedSlot* end,
                                              const PlaneWord* planes);
#endif
#if defined(SITAM_SIMD_NEON)
/// NEON kernel entry points (packed_kernels_neon.cpp).
[[nodiscard]] bool packed_neon_record_conflict(
    const PackedSweepIndex::Record& r, const PackedSlot* slot_base,
    const PlaneWord* planes);
[[nodiscard]] bool packed_neon_slots_conflict(const PackedSlot* s,
                                              const PackedSlot* end,
                                              const PlaneWord* planes);
#endif

/// Scalar slot-span probe — the conflict formula over each word-compressed
/// slot against the dense planes. Inline so SITAM_SIMD=OFF builds fold it
/// straight into the sweep loops.
[[nodiscard]] inline bool packed_scalar_slots_conflict(
    const PackedSlot* s, const PackedSlot* end, const PlaneWord* planes) {
  for (; s != end; ++s) {
    const PlaneWord& p = planes[s->word];
    if ((s->care & p.care &
         ((s->value ^ p.value) | (s->active ^ p.active))) != 0) {
      return true;
    }
  }
  return false;
}

/// Scalar sweep-record probe: the two branch-free inlined slot pairs, then
/// the rest-of-slots walk. A missing inlined slot carries care 0 and word
/// 0, which reads planes[0] (always allocated) and conflicts never.
[[nodiscard]] inline bool packed_scalar_record_conflict(
    const PackedSweepIndex::Record& r, const PackedSlot* slot_base,
    const PlaneWord* planes) {
  const PlaneWord& p0 = planes[r.word[0]];
  const PlaneWord& p1 = planes[r.word[1]];
  if (((r.care0 & p0.care & ((r.value0 ^ p0.value) | (r.active0 ^ p0.active))) |
       (r.care1 & p1.care &
        ((r.value1 ^ p1.value) | (r.active1 ^ p1.active)))) != 0) {
    return true;
  }
  const PlaneWord& p2 = planes[r.word[2]];
  const PlaneWord& p3 = planes[r.word[3]];
  if (((r.care2 & p2.care & ((r.value2 ^ p2.value) | (r.active2 ^ p2.active))) |
       (r.care3 & p3.care &
        ((r.value3 ^ p3.value) | (r.active3 ^ p3.active)))) != 0) {
    return true;
  }
  return packed_scalar_slots_conflict(slot_base + r.rest_begin,
                                      slot_base + r.slot_end, planes);
}

/// Dense bit-planes for one growing compacted pattern (or one first-fit
/// class). reset() is O(planes) — a few hundred bytes — while the bus
/// driver table is epoch-stamped so per-line driver ids never need
/// clearing across the thousands of sweep rounds.
///
/// fits() is const and touches no mutable state, so any number of threads
/// may probe one accumulator concurrently between mutations — that is the
/// contract the deterministic parallel sweep in compaction.cpp relies on.
class PackedAccumulator {
 public:
  /// Probes dispatch through packed_active_kernels().
  explicit PackedAccumulator(PackedLayout layout);
  /// Probes dispatch through `kernels` — the packed_kernels_test seam that
  /// pins one kernel set regardless of the running CPU. `kernels` must
  /// outlive the accumulator (the packed_all_kernels() entries do).
  PackedAccumulator(PackedLayout layout, const PackedKernels& kernels);

  /// Starts a fresh compacted pattern.
  void reset();

  /// True iff member `i` of `set` can merge into the accumulated pattern.
  /// Precondition (checked in debug builds): set.layout() == layout().
  [[nodiscard]] bool fits(const PackedPatternSet& set, std::size_t i) const;

  /// Same decision as fits(set, i) via the sweep index's inlined records —
  /// the greedy sweep's hot path. Defined inline below so it folds into
  /// the sweep loop; the out-of-line bus tail handles the rare overlap.
  /// Precondition as above for index.set().
  [[nodiscard]] bool fits(const PackedSweepIndex& index, std::size_t i) const;

  /// Merges member `i` in. Precondition: fits(set, i).
  void absorb(const PackedPatternSet& set, std::size_t i);

  /// True iff member `i` of `set` is *contained* in the accumulated
  /// pattern: every care bit present with the same value and every bus
  /// line occupied by the same driver. The packed subset check behind
  /// first_uncovered().
  [[nodiscard]] bool contains(const PackedPatternSet& set,
                              std::size_t i) const;

  /// Folded care-word occupancy of the accumulated pattern; a candidate
  /// whose summary has bits outside it cannot be contained.
  [[nodiscard]] std::uint64_t summary() const noexcept { return summary_; }

  /// Materializes the accumulated pattern as a sparse SiPattern
  /// (terminals and bus lines emitted in ascending order, so the result
  /// is byte-identical to what the historical sparse accumulator built).
  [[nodiscard]] SiPattern to_pattern() const;

 private:
  /// Shared bus tail of both fits() overloads.
  [[nodiscard]] bool fits_bus(const PackedPatternSet& set, std::size_t i,
                              std::uint64_t bus_word0,
                              std::int32_t uniform_driver) const;

  PackedLayout layout_;
  // Kernel set the probes dispatch through (SITAM_SIMD builds only; OFF
  // builds call the inline scalar kernels directly and never read this).
  const PackedKernels* kernels_;
  // Interleaved planes (at least one word, so inlined probes of an empty
  // slot — care 0, word 0 — stay in bounds without a branch).
  std::vector<PlaneWord> planes_;
  std::uint64_t summary_ = 0;
  std::uint64_t bus0_ = 0;                 // mirror of bus_mask_[0] (hot path)
  std::vector<std::uint64_t> bus_mask_;
  std::vector<std::int32_t> bus_driver_;   // valid iff epoch matches
  std::vector<std::uint32_t> bus_epoch_;
  std::uint32_t epoch_ = 1;
  std::int32_t driver_state_ = kNoBusDriver;  // uniform-driver fast path
};

inline bool PackedAccumulator::fits(const PackedSweepIndex& index,
                                    std::size_t i) const {
  SITAM_DCHECK(index.set().layout() == layout_);
  const PackedSweepIndex::Record& r = index.record(i);
  const PackedPatternSet& set = index.set();
#if SITAM_PACKED_KERNEL_DISPATCH
  if (kernels_->record_conflict(r, set.slot_data(), planes_.data())) {
    return false;
  }
#else
  if (packed_scalar_record_conflict(r, set.slot_data(), planes_.data())) {
    return false;
  }
#endif
  return fits_bus(set, i, r.bus_word0, r.uniform_driver);
}

}  // namespace sitam
