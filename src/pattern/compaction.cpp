#include "pattern/compaction.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"
#include "util/stopwatch.h"

namespace sitam {

namespace {

/// Dense, epoch-stamped view of one growing compacted pattern. Checking a
/// sparse candidate against it is O(candidate care bits).
class Accumulator {
 public:
  Accumulator(int total_terminals, int bus_width)
      : values_(static_cast<std::size_t>(total_terminals)),
        value_epoch_(static_cast<std::size_t>(total_terminals), 0),
        bus_driver_(static_cast<std::size_t>(bus_width)),
        bus_epoch_(static_cast<std::size_t>(bus_width), 0) {}

  /// Starts a fresh compacted pattern (O(1) via epoch bump).
  void reset() {
    ++epoch_;
    touched_terminals_.clear();
    touched_bus_.clear();
  }

  [[nodiscard]] bool fits(const SiPattern& p) const {
    for (const auto& [terminal, value] : p.assignments()) {
      check_terminal(terminal);
      const auto t = static_cast<std::size_t>(terminal);
      if (value_epoch_[t] == epoch_ && values_[t] != value) return false;
    }
    for (const BusBit& bit : p.bus_bits()) {
      check_bus(bit.line);
      const auto l = static_cast<std::size_t>(bit.line);
      if (bus_epoch_[l] == epoch_ && bus_driver_[l] != bit.driver_core) {
        return false;
      }
    }
    return true;
  }

  /// Precondition: fits(p).
  void absorb(const SiPattern& p) {
    for (const auto& [terminal, value] : p.assignments()) {
      const auto t = static_cast<std::size_t>(terminal);
      if (value_epoch_[t] != epoch_) {
        value_epoch_[t] = epoch_;
        values_[t] = value;
        touched_terminals_.push_back(terminal);
      }
    }
    for (const BusBit& bit : p.bus_bits()) {
      const auto l = static_cast<std::size_t>(bit.line);
      if (bus_epoch_[l] != epoch_) {
        bus_epoch_[l] = epoch_;
        bus_driver_[l] = bit.driver_core;
        touched_bus_.push_back(bit.line);
      }
    }
  }

  [[nodiscard]] SiPattern to_pattern() {
    SiPattern p;
    std::sort(touched_terminals_.begin(), touched_terminals_.end());
    for (const int terminal : touched_terminals_) {
      p.set(terminal, values_[static_cast<std::size_t>(terminal)]);
    }
    std::sort(touched_bus_.begin(), touched_bus_.end());
    for (const int line : touched_bus_) {
      p.set_bus(line, bus_driver_[static_cast<std::size_t>(line)]);
    }
    return p;
  }

 private:
  void check_terminal(int terminal) const {
    if (terminal < 0 || terminal >= static_cast<int>(values_.size())) {
      throw std::out_of_range("compaction: terminal id " +
                              std::to_string(terminal) +
                              " outside declared terminal space");
    }
  }
  void check_bus(int line) const {
    if (line < 0 || line >= static_cast<int>(bus_driver_.size())) {
      throw std::out_of_range("compaction: bus line " + std::to_string(line) +
                              " outside declared bus width");
    }
  }

  std::uint32_t epoch_ = 0;
  std::vector<SigValue> values_;
  std::vector<std::uint32_t> value_epoch_;
  std::vector<int> bus_driver_;
  std::vector<std::uint32_t> bus_epoch_;
  std::vector<int> touched_terminals_;
  std::vector<int> touched_bus_;
};

}  // namespace

CompactionResult compact_greedy(std::span<const SiPattern> patterns,
                                int total_terminals, int bus_width) {
  if (total_terminals < 0 || bus_width < 0) {
    throw std::invalid_argument("compact_greedy: negative dimensions");
  }
  Stopwatch watch;
  CompactionResult result;
  result.stats.original_count = patterns.size();

  Accumulator acc(total_terminals, bus_width);
  std::vector<bool> used(patterns.size(), false);
  std::size_t next_seed = 0;
  // Each cycle seeds a new compacted pattern with the first uncompacted one
  // and sweeps all following patterns, merging every compatible one.
  while (true) {
    while (next_seed < patterns.size() && used[next_seed]) ++next_seed;
    if (next_seed == patterns.size()) break;
    acc.reset();
    // fits() on an empty accumulator cannot conflict, but it validates the
    // seed's terminal/bus ranges.
    SITAM_CHECK(acc.fits(patterns[next_seed]));
    acc.absorb(patterns[next_seed]);
    used[next_seed] = true;
    for (std::size_t j = next_seed + 1; j < patterns.size(); ++j) {
      if (used[j]) continue;
      if (acc.fits(patterns[j])) {
        acc.absorb(patterns[j]);
        used[j] = true;
      }
    }
    result.patterns.push_back(acc.to_pattern());
  }

  result.stats.compacted_count = result.patterns.size();
  result.stats.seconds = watch.seconds();
  return result;
}

CompactionResult compact_first_fit(std::span<const SiPattern> patterns,
                                   int total_terminals, int bus_width) {
  if (total_terminals < 0 || bus_width < 0) {
    throw std::invalid_argument("compact_first_fit: negative dimensions");
  }
  Stopwatch watch;
  CompactionResult result;
  result.stats.original_count = patterns.size();

  // Welsh-Powell order: densest (hardest to place) patterns first.
  std::vector<std::size_t> order(patterns.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const auto density = [&](std::size_t i) {
                       return patterns[i].care_count() +
                              static_cast<int>(patterns[i].bus_bits().size());
                     };
                     return density(a) > density(b);
                   });

  // Classes are kept as merged SiPatterns; a candidate joins the first class
  // it is compatible with (first-fit coloring of the conflict graph).
  std::vector<SiPattern> classes;
  for (const std::size_t index : order) {
    const SiPattern& p = patterns[index];
    for (const auto& [terminal, value] : p.assignments()) {
      (void)value;
      if (terminal >= total_terminals) {
        throw std::out_of_range(
            "compact_first_fit: terminal id " + std::to_string(terminal) +
            " outside declared terminal space");
      }
    }
    for (const BusBit& bit : p.bus_bits()) {
      if (bit.line >= bus_width) {
        throw std::out_of_range("compact_first_fit: bus line " +
                                std::to_string(bit.line) +
                                " outside declared bus width");
      }
    }
    bool placed = false;
    for (SiPattern& cls : classes) {
      if (cls.try_absorb(p)) {
        placed = true;
        break;
      }
    }
    if (!placed) classes.push_back(p);
  }

  result.patterns = std::move(classes);
  result.stats.compacted_count = result.patterns.size();
  result.stats.seconds = watch.seconds();
  return result;
}

std::ptrdiff_t first_uncovered(std::span<const SiPattern> original,
                               std::span<const SiPattern> compacted) {
  for (std::size_t i = 0; i < original.size(); ++i) {
    const SiPattern& p = original[i];
    bool covered = false;
    for (const SiPattern& c : compacted) {
      // p is covered by c iff every assignment and bus bit of p appears in
      // c with the same value/driver.
      bool all_in = true;
      for (const auto& [terminal, value] : p.assignments()) {
        if (c.at(terminal) != value) {
          all_in = false;
          break;
        }
      }
      if (all_in) {
        for (const BusBit& bit : p.bus_bits()) {
          const auto bus = c.bus_bits();
          const auto it = std::lower_bound(
              bus.begin(), bus.end(), bit.line,
              [](const BusBit& b, int line) { return b.line < line; });
          if (it == bus.end() || it->line != bit.line ||
              it->driver_core != bit.driver_core) {
            all_in = false;
            break;
          }
        }
      }
      if (all_in) {
        covered = true;
        break;
      }
    }
    if (!covered) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

}  // namespace sitam
