#include "pattern/compaction.h"

#include <algorithm>
#include <future>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "obs/obs.h"
#include "pattern/packed.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace sitam {

namespace {

/// Dense, epoch-stamped view of one growing compacted pattern. Checking a
/// sparse candidate against it is O(candidate care bits). This is the seed
/// implementation backing compact_greedy_reference — kept verbatim as the
/// baseline the packed kernel is measured (and byte-compared) against.
class SparseAccumulator {
 public:
  SparseAccumulator(int total_terminals, int bus_width)
      : values_(static_cast<std::size_t>(total_terminals)),
        value_epoch_(static_cast<std::size_t>(total_terminals), 0),
        bus_driver_(static_cast<std::size_t>(bus_width)),
        bus_epoch_(static_cast<std::size_t>(bus_width), 0) {}

  /// Starts a fresh compacted pattern (O(1) via epoch bump).
  void reset() {
    ++epoch_;
    touched_terminals_.clear();
    touched_bus_.clear();
  }

  [[nodiscard]] bool fits(const SiPattern& p) const {
    for (const auto& [terminal, value] : p.assignments()) {
      check_terminal(terminal);
      const auto t = static_cast<std::size_t>(terminal);
      if (value_epoch_[t] == epoch_ && values_[t] != value) return false;
    }
    for (const BusBit& bit : p.bus_bits()) {
      check_bus(bit.line);
      const auto l = static_cast<std::size_t>(bit.line);
      if (bus_epoch_[l] == epoch_ && bus_driver_[l] != bit.driver_core) {
        return false;
      }
    }
    return true;
  }

  /// Precondition: fits(p).
  void absorb(const SiPattern& p) {
    for (const auto& [terminal, value] : p.assignments()) {
      const auto t = static_cast<std::size_t>(terminal);
      if (value_epoch_[t] != epoch_) {
        value_epoch_[t] = epoch_;
        values_[t] = value;
        touched_terminals_.push_back(terminal);
      }
    }
    for (const BusBit& bit : p.bus_bits()) {
      const auto l = static_cast<std::size_t>(bit.line);
      if (bus_epoch_[l] != epoch_) {
        bus_epoch_[l] = epoch_;
        bus_driver_[l] = bit.driver_core;
        touched_bus_.push_back(bit.line);
      }
    }
  }

  [[nodiscard]] SiPattern to_pattern() {
    SiPattern p;
    std::sort(touched_terminals_.begin(), touched_terminals_.end());
    for (const int terminal : touched_terminals_) {
      p.set(terminal, values_[static_cast<std::size_t>(terminal)]);
    }
    std::sort(touched_bus_.begin(), touched_bus_.end());
    for (const int line : touched_bus_) {
      p.set_bus(line, bus_driver_[static_cast<std::size_t>(line)]);
    }
    return p;
  }

 private:
  void check_terminal(int terminal) const {
    if (terminal < 0 || terminal >= static_cast<int>(values_.size())) {
      throw std::out_of_range("compaction: terminal id " +
                              std::to_string(terminal) +
                              " outside declared terminal space");
    }
  }
  void check_bus(int line) const {
    if (line < 0 || line >= static_cast<int>(bus_driver_.size())) {
      throw std::out_of_range("compaction: bus line " + std::to_string(line) +
                              " outside declared bus width");
    }
  }

  std::uint32_t epoch_ = 0;
  std::vector<SigValue> values_;
  std::vector<std::uint32_t> value_epoch_;
  std::vector<int> bus_driver_;
  std::vector<std::uint32_t> bus_epoch_;
  std::vector<int> touched_terminals_;
  std::vector<int> touched_bus_;
};

/// How many candidates ahead the sweep hints the index records into cache.
/// The alive list's gaps defeat hardware prefetchers, and a record that
/// misses to L3 costs several times the check itself; ~12 checks of lead
/// time covers that latency without thrashing the line-fill buffers.
constexpr std::size_t kSweepPrefetchDistance = 12;

}  // namespace

CompactionResult compact_greedy(std::span<const SiPattern> patterns,
                                int total_terminals, int bus_width,
                                const CompactionConfig& config) {
  if (total_terminals < 0 || bus_width < 0) {
    throw std::invalid_argument("compact_greedy: negative dimensions");
  }
  if (config.threads < 1) {
    throw std::invalid_argument("compact_greedy: threads must be >= 1");
  }
  Stopwatch watch;
  CompactionResult result;
  result.stats.original_count = patterns.size();

  const PackedLayout layout{total_terminals, bus_width};
  const PackedPatternSet set(patterns, layout);
  const PackedSweepIndex index(set);
  PackedAccumulator acc(layout);

  // `alive` holds the not-yet-compacted indices in ascending order; each
  // round seeds on the first one, sweeps the rest, and keeps the leftovers.
  std::vector<std::uint32_t> alive(patterns.size());
  std::iota(alive.begin(), alive.end(), std::uint32_t{0});
  std::vector<std::uint32_t> leftover;
  leftover.reserve(alive.size());

  std::optional<ThreadPool> pool;
  if (config.threads > 1 && alive.size() > config.min_parallel_candidates) {
    pool.emplace(config.threads);
  }
  std::vector<std::uint8_t> survivor;   // parallel filter scratch
  std::vector<std::future<void>> futures;

  while (!alive.empty()) {
    acc.reset();
    acc.absorb(set, alive.front());
    const std::span<const std::uint32_t> candidates =
        std::span(alive).subspan(1);
    leftover.clear();

    if (pool && candidates.size() >= config.min_parallel_candidates) {
      // Deterministic parallel sweep. Workers probe their shard against
      // the accumulator *snapshot* (only reads — fits() is const); a
      // candidate that conflicts with the snapshot also conflicts with
      // every later state of this round's accumulator (it only grows, and
      // absorbed values never change), so snapshot-rejects are exact. The
      // survivors are then merged serially in ascending index order with a
      // re-test against the growing accumulator — precisely the decision
      // the serial sweep makes — so the output is bit-identical to the
      // serial sweep for any thread count and any shard geometry.
      survivor.assign(candidates.size(), 0);
      const std::size_t shards = static_cast<std::size_t>(pool->size());
      const std::size_t chunk = (candidates.size() + shards - 1) / shards;
      futures.clear();
      for (std::size_t begin = 0; begin < candidates.size(); begin += chunk) {
        const std::size_t end = std::min(begin + chunk, candidates.size());
        futures.push_back(pool->submit([&, begin, end] {
          for (std::size_t k = begin; k < end; ++k) {
            if (k + kSweepPrefetchDistance < end) {
              index.prefetch(candidates[k + kSweepPrefetchDistance]);
            }
            survivor[k] = acc.fits(index, candidates[k]) ? 1 : 0;
          }
        }));
      }
      for (auto& future : futures) future.get();
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        const std::uint32_t candidate = candidates[k];
        if (survivor[k] != 0 && acc.fits(index, candidate)) {
          acc.absorb(set, candidate);
        } else {
          leftover.push_back(candidate);
        }
      }
    } else {
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        if (k + kSweepPrefetchDistance < candidates.size()) {
          index.prefetch(candidates[k + kSweepPrefetchDistance]);
        }
        const std::uint32_t candidate = candidates[k];
        if (acc.fits(index, candidate)) {
          acc.absorb(set, candidate);
        } else {
          leftover.push_back(candidate);
        }
      }
    }
    result.patterns.push_back(acc.to_pattern());
    // Rejects this round == candidates the sweep could not merge into the
    // seed; the histogram shape shows how quickly rounds drain.
    SITAM_COUNTER("pattern.compaction.rounds", 1);
    SITAM_HISTOGRAM("pattern.compaction.sweep_rejects", leftover.size());
    std::swap(alive, leftover);
  }

  result.stats.compacted_count = result.patterns.size();
  result.stats.seconds = watch.seconds();
  SITAM_COUNTER("pattern.compaction.patterns_in",
                result.stats.original_count);
  SITAM_COUNTER("pattern.compaction.patterns_out",
                result.stats.compacted_count);
  return result;
}

CompactionResult compact_greedy_reference(std::span<const SiPattern> patterns,
                                          int total_terminals,
                                          int bus_width) {
  if (total_terminals < 0 || bus_width < 0) {
    throw std::invalid_argument("compact_greedy: negative dimensions");
  }
  Stopwatch watch;
  CompactionResult result;
  result.stats.original_count = patterns.size();

  SparseAccumulator acc(total_terminals, bus_width);
  std::vector<bool> used(patterns.size(), false);
  std::size_t next_seed = 0;
  // Each cycle seeds a new compacted pattern with the first uncompacted one
  // and sweeps all following patterns, merging every compatible one.
  while (true) {
    while (next_seed < patterns.size() && used[next_seed]) ++next_seed;
    if (next_seed == patterns.size()) break;
    acc.reset();
    // fits() on an empty accumulator cannot conflict, but it validates the
    // seed's terminal/bus ranges.
    SITAM_CHECK(acc.fits(patterns[next_seed]));
    acc.absorb(patterns[next_seed]);
    used[next_seed] = true;
    for (std::size_t j = next_seed + 1; j < patterns.size(); ++j) {
      if (used[j]) continue;
      if (acc.fits(patterns[j])) {
        acc.absorb(patterns[j]);
        used[j] = true;
      }
    }
    result.patterns.push_back(acc.to_pattern());
  }

  result.stats.compacted_count = result.patterns.size();
  result.stats.seconds = watch.seconds();
  return result;
}

CompactionResult compact_first_fit(std::span<const SiPattern> patterns,
                                   int total_terminals, int bus_width) {
  if (total_terminals < 0 || bus_width < 0) {
    throw std::invalid_argument("compact_first_fit: negative dimensions");
  }
  Stopwatch watch;
  CompactionResult result;
  result.stats.original_count = patterns.size();

  const PackedLayout layout{total_terminals, bus_width};
  const PackedPatternSet set(patterns, layout);
  const PackedSweepIndex index(set);

  // Welsh-Powell order: densest (hardest to place) patterns first. The
  // density keys are computed once up front — not inside the comparator,
  // which would recompute them on every one of the O(n log n) comparisons.
  std::vector<int> density(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    density[i] = patterns[i].care_count() +
                 static_cast<int>(patterns[i].bus_bits().size());
  }
  std::vector<std::size_t> order(patterns.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&density](std::size_t a, std::size_t b) {
                     return density[a] > density[b];
                   });

  // Classes are packed accumulators; a candidate joins the first class it
  // is compatible with (first-fit coloring of the conflict graph).
  std::vector<PackedAccumulator> classes;
  for (const std::size_t candidate : order) {
    bool placed = false;
    for (PackedAccumulator& cls : classes) {
      // The candidate's sweep record stays hot in L1 across the classes.
      if (cls.fits(index, candidate)) {
        cls.absorb(set, candidate);
        placed = true;
        break;
      }
    }
    if (!placed) {
      classes.emplace_back(layout);
      classes.back().absorb(set, candidate);
    }
  }

  result.patterns.reserve(classes.size());
  for (const PackedAccumulator& cls : classes) {
    result.patterns.push_back(cls.to_pattern());
  }
  result.stats.compacted_count = result.patterns.size();
  result.stats.seconds = watch.seconds();
  return result;
}

std::ptrdiff_t first_uncovered(std::span<const SiPattern> original,
                               std::span<const SiPattern> compacted) {
  // The public signature carries no dimensions, so infer the smallest
  // layout covering both sets (lists are sorted: the max id is at the back).
  PackedLayout layout;
  const auto widen = [&layout](std::span<const SiPattern> patterns) {
    for (const SiPattern& p : patterns) {
      const auto assignments = p.assignments();
      if (!assignments.empty()) {
        layout.total_terminals =
            std::max(layout.total_terminals, assignments.back().first + 1);
      }
      const auto bus = p.bus_bits();
      if (!bus.empty()) {
        layout.bus_width = std::max(layout.bus_width, bus.back().line + 1);
      }
    }
  };
  widen(original);
  widen(compacted);

  const PackedPatternSet packed_original(original, layout);
  const PackedPatternSet packed_compacted(compacted, layout);
  // Materialize each compacted pattern as dense planes once; the covering
  // test is then O(original slots) per pair instead of a per-bit probe.
  std::vector<PackedAccumulator> dense;
  dense.reserve(compacted.size());
  for (std::size_t j = 0; j < compacted.size(); ++j) {
    dense.emplace_back(layout);
    dense.back().absorb(packed_compacted, j);
  }

  for (std::size_t i = 0; i < original.size(); ++i) {
    bool covered = false;
    const std::uint64_t summary = packed_original.summary(i);
    for (const PackedAccumulator& c : dense) {
      // A care word outside the compacted pattern's folded occupancy can
      // never be contained — reject in one AND.
      if ((summary & ~c.summary()) != 0) continue;
      if (c.contains(packed_original, i)) {
        covered = true;
        break;
      }
    }
    if (!covered) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

}  // namespace sitam
