// Maximal-aggressor (MA) fault coverage accounting.
//
// The MA model [Cuviello et al., ICCAD'99] defines six fault conditions per
// victim net; a vector pair detects one iff the victim carries the fault's
// victim behaviour while *every* neighbor in the coupling window makes the
// fault's aggressor transition. This module enumerates the fault list for a
// topology and scores pattern sets against it — which lets the test suite
// prove that compaction never loses coverage (merged patterns only gain
// assignments).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "interconnect/topology.h"
#include "pattern/pattern.h"

namespace sitam {

enum class MaFaultType : std::uint8_t {
  kPositiveGlitch,   // victim 0, aggressors rise
  kNegativeGlitch,   // victim 1, aggressors fall
  kRisingDelay,      // victim rise, aggressors fall
  kFallingDelay,     // victim fall, aggressors rise
  kRisingSpeedup,    // victim rise, aggressors rise
  kFallingSpeedup,   // victim fall, aggressors fall
};

/// Victim value required to excite `type`.
[[nodiscard]] SigValue ma_victim_value(MaFaultType type) noexcept;
/// Aggressor transition required to excite `type`.
[[nodiscard]] SigValue ma_aggressor_value(MaFaultType type) noexcept;

struct MaFault {
  int net = 0;  ///< Victim net id in the topology.
  MaFaultType type = MaFaultType::kPositiveGlitch;

  friend bool operator==(const MaFault&, const MaFault&) = default;
};

/// The complete MA fault list: 6 faults per net.
[[nodiscard]] std::vector<MaFault> all_ma_faults(const Topology& topology);

/// True iff `pattern` excites `fault`: victim value matches and every
/// neighbor within ±`window` routing slots carries the aggressor value.
/// Nets sharing the victim's driver terminal are skipped (they cannot be
/// driven independently).
[[nodiscard]] bool excites(const SiPattern& pattern,
                           const Topology& topology, const MaFault& fault,
                           int window);

struct CoverageReport {
  std::int64_t total_faults = 0;
  std::int64_t covered_faults = 0;

  [[nodiscard]] double percent() const {
    return total_faults == 0
               ? 100.0
               : 100.0 * static_cast<double>(covered_faults) /
                     static_cast<double>(total_faults);
  }
};

/// Scores a pattern set against the full MA fault list.
[[nodiscard]] CoverageReport ma_fault_coverage(
    std::span<const SiPattern> patterns, const Topology& topology,
    int window);

}  // namespace sitam
