#include "pattern/io.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace sitam {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + message);
}

std::int64_t parse_int(std::string_view token, int line) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail(line, "expected integer, got '" + std::string(token) + "'");
  }
  return value;
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\r')) {
      ++pos;
    }
    std::size_t end = pos;
    while (end < text.size() && text[end] != ' ' && text[end] != '\t' &&
           text[end] != '\r') {
      ++end;
    }
    if (end > pos) tokens.push_back(text.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

/// "key=value" accessor over a header token list.
std::int64_t header_value(const std::vector<std::string_view>& tokens,
                          std::string_view key, int line) {
  for (const std::string_view token : tokens) {
    const auto eq = token.find('=');
    if (eq != std::string_view::npos && token.substr(0, eq) == key) {
      return parse_int(token.substr(eq + 1), line);
    }
  }
  fail(line, "missing header field '" + std::string(key) + "'");
}

char value_code(SigValue value) {
  switch (value) {
    case SigValue::kStable0:
      return '0';
    case SigValue::kStable1:
      return '1';
    case SigValue::kRise:
      return 'r';
    case SigValue::kFall:
      return 'f';
    case SigValue::kDontCare:
      break;
  }
  return '?';
}

}  // namespace

std::string patterns_to_text(std::span<const SiPattern> patterns,
                             int total_terminals, int bus_width) {
  std::ostringstream os;
  os << "SiPatterns terminals=" << total_terminals << " bus=" << bus_width
     << " count=" << patterns.size() << "\n";
  for (const SiPattern& p : patterns) {
    if (p.empty()) {
      os << "-\n";  // fully-don't-care pattern (blank lines are skipped)
      continue;
    }
    bool first = true;
    for (const auto& [terminal, value] : p.assignments()) {
      if (!first) os << ' ';
      first = false;
      const char code = value_code(value);
      if (code == '0' || code == '1') {
        os << terminal << ':' << code;
      } else {
        os << terminal << code;
      }
    }
    if (!p.bus_bits().empty()) {
      os << (first ? "|" : " |");
      for (const BusBit& bit : p.bus_bits()) {
        os << ' ' << bit.line << '@' << bit.driver_core;
      }
    }
    os << "\n";
  }
  return os.str();
}

ParsedPatterns patterns_from_text(std::string_view text) {
  ParsedPatterns result;
  int line_no = 0;
  std::size_t pos = 0;
  bool saw_header = false;
  std::size_t expected = 0;

  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    const std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos
                                          : nl - pos);
    ++line_no;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    const auto tokens = split_ws(line);
    if (tokens.empty()) continue;

    if (!saw_header) {
      if (tokens[0] != "SiPatterns") fail(line_no, "missing SiPatterns header");
      result.total_terminals =
          static_cast<int>(header_value(tokens, "terminals", line_no));
      result.bus_width =
          static_cast<int>(header_value(tokens, "bus", line_no));
      expected =
          static_cast<std::size_t>(header_value(tokens, "count", line_no));
      saw_header = true;
      continue;
    }

    SiPattern p;
    bool in_bus = false;
    for (const std::string_view token : tokens) {
      if (token == "-") continue;  // empty-pattern marker
      if (token == "|") {
        in_bus = true;
        continue;
      }
      if (in_bus) {
        const auto at = token.find('@');
        if (at == std::string_view::npos) {
          fail(line_no, "bus bit without '@': '" + std::string(token) + "'");
        }
        p.set_bus(static_cast<int>(parse_int(token.substr(0, at), line_no)),
                  static_cast<int>(parse_int(token.substr(at + 1), line_no)));
        continue;
      }
      // "<terminal>r", "<terminal>f", "<terminal>:0" or "<terminal>:1".
      SigValue value = SigValue::kDontCare;
      std::string_view number = token;
      if (token.size() >= 2 && token[token.size() - 2] == ':') {
        const char code = token.back();
        value = code == '0' ? SigValue::kStable0
                : code == '1'
                    ? SigValue::kStable1
                    : SigValue::kDontCare;
        if (value == SigValue::kDontCare) {
          fail(line_no, "bad stable code in '" + std::string(token) + "'");
        }
        number = token.substr(0, token.size() - 2);
      } else if (!token.empty() && token.back() == 'r') {
        value = SigValue::kRise;
        number = token.substr(0, token.size() - 1);
      } else if (!token.empty() && token.back() == 'f') {
        value = SigValue::kFall;
        number = token.substr(0, token.size() - 1);
      } else {
        fail(line_no, "bad assignment token '" + std::string(token) + "'");
      }
      const int terminal = static_cast<int>(parse_int(number, line_no));
      if (terminal < 0 || terminal >= result.total_terminals) {
        fail(line_no, "terminal " + std::to_string(terminal) +
                          " outside declared space");
      }
      p.set(terminal, value);
    }
    result.patterns.push_back(std::move(p));
  }

  if (!saw_header) fail(1, "empty pattern file");
  if (result.patterns.size() != expected) {
    fail(line_no, "header declared " + std::to_string(expected) +
                      " patterns but found " +
                      std::to_string(result.patterns.size()));
  }
  return result;
}

}  // namespace sitam
