// Text serialization for SI pattern sets and compacted SI test sets.
//
// Lets users persist expensive artifacts (a 100k-pattern compaction run
// takes tens of seconds) and hand test sets between tools. The format is
// line-oriented and diff-friendly:
//
//   SiPatterns terminals=<N> bus=<W> count=<K>
//   <assignments> [| <bus bits>]          # one line per pattern
//
// where an assignment is "<terminal><code>" with code 0/1/r/f and a bus
// bit is "<line>@<driver core>", e.g.:
//
//   3r 7f 12:0 | 2@5 9@5
//
// ('0'/'1' need a separator from the terminal number, so stable values are
// written "<terminal>:0" / "<terminal>:1".)
//
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "pattern/pattern.h"

namespace sitam {

/// Serializes a pattern set (see format above).
[[nodiscard]] std::string patterns_to_text(std::span<const SiPattern> patterns,
                                           int total_terminals,
                                           int bus_width);

struct ParsedPatterns {
  std::vector<SiPattern> patterns;
  int total_terminals = 0;
  int bus_width = 0;
};

/// Parses a pattern set; throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] ParsedPatterns patterns_from_text(std::string_view text);

}  // namespace sitam
