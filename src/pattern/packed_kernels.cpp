// Plane-sweep kernel registry and runtime dispatch (see packed.h for the
// kernel-table contract). The scalar implementations live inline in
// packed.h so SITAM_SIMD=OFF builds keep the fully-inlined probes; this TU
// wraps them into table entries and resolves which SIMD set — if any — the
// build compiled and the running CPU supports. The resolution is a pure
// read of immutable tables plus a CPU-feature query, so there is no
// mutable global state and the accessors are trivially reentrant.
#include <array>
#include <cstddef>
#include <span>

#include "pattern/packed.h"

namespace sitam {

namespace {

// Out-of-line wrappers: table entries need function pointers, and the
// inline header kernels have no unique address across TUs.
bool scalar_record_conflict(const PackedSweepIndex::Record& r,
                            const PackedSlot* slot_base,
                            const PlaneWord* planes) {
  return packed_scalar_record_conflict(r, slot_base, planes);
}

bool scalar_slots_conflict(const PackedSlot* s, const PackedSlot* end,
                           const PlaneWord* planes) {
  return packed_scalar_slots_conflict(s, end, planes);
}

// Every kernel set this build compiled, scalar first. packed_all_kernels()
// exposes a prefix of this array: the SIMD entry is included only when the
// running CPU can execute it.
constexpr std::array kKernelTable = {
    PackedKernels{"scalar", &scalar_record_conflict, &scalar_slots_conflict},
#if defined(SITAM_SIMD_AVX2)
    PackedKernels{"avx2", &packed_avx2_record_conflict,
                  &packed_avx2_slots_conflict},
#elif defined(SITAM_SIMD_NEON)
    PackedKernels{"neon", &packed_neon_record_conflict,
                  &packed_neon_slots_conflict},
#endif
};

}  // namespace

const PackedKernels& packed_scalar_kernels() { return kKernelTable[0]; }

std::span<const PackedKernels> packed_all_kernels() {
#if defined(SITAM_SIMD_AVX2)
  // NEON is unconditional on aarch64; AVX2 needs the runtime check (the
  // binary may have been built on, or copied to, a pre-AVX2 x86-64 CPU).
  if (__builtin_cpu_supports("avx2") != 0) {
    return {kKernelTable.data(), kKernelTable.size()};
  }
  return {kKernelTable.data(), 1};
#else
  return {kKernelTable.data(), kKernelTable.size()};
#endif
}

const PackedKernels& packed_active_kernels() {
  const std::span<const PackedKernels> all = packed_all_kernels();
  return all[all.size() - 1];
}

}  // namespace sitam
