#include "pattern/generator.h"

#include <algorithm>
#include <stdexcept>

namespace sitam {

namespace {

SigValue random_victim_value(Rng& rng) {
  switch (rng.below(4)) {
    case 0:
      return SigValue::kStable0;
    case 1:
      return SigValue::kStable1;
    case 2:
      return SigValue::kRise;
    default:
      return SigValue::kFall;
  }
}

SigValue random_transition(Rng& rng) {
  return rng.chance(0.5) ? SigValue::kRise : SigValue::kFall;
}

}  // namespace

std::vector<SiPattern> generate_random_patterns(
    const TerminalSpace& terminals, std::int64_t count,
    const RandomPatternConfig& config, Rng& rng) {
  if (terminals.core_count() < 2) {
    throw std::invalid_argument(
        "generate_random_patterns: need at least 2 cores");
  }
  if (count < 0) {
    throw std::invalid_argument("generate_random_patterns: negative count");
  }
  if (config.min_aggressors < 1 ||
      config.max_aggressors < config.min_aggressors) {
    throw std::invalid_argument(
        "generate_random_patterns: bad aggressor range");
  }
  if (config.bus_use_probability < 0.0 || config.bus_use_probability > 1.0) {
    throw std::invalid_argument(
        "generate_random_patterns: bus probability outside [0,1]");
  }
  if (config.bus_width < 0 || config.max_external_aggressors < 0 ||
      config.min_external_aggressors < 0 || config.locality_window < 0 ||
      config.external_core_ring < 0) {
    throw std::invalid_argument("generate_random_patterns: negative config");
  }

  const int cores = terminals.core_count();
  std::vector<SiPattern> patterns;
  patterns.reserve(static_cast<std::size_t>(count));

  for (std::int64_t n = 0; n < count; ++n) {
    SiPattern p;

    // Victim: a random output terminal of a random core.
    const int victim_core = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(cores)));
    const int victim_woc = terminals.woc(victim_core);
    const int victim_bit =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(victim_woc)));
    const int victim_terminal = terminals.terminal(victim_core, victim_bit);
    p.set(victim_terminal, random_victim_value(rng));

    // Aggressors: Na in [min, max], at most max_external outside the victim
    // core boundary, the rest inside. Internal aggressors come from the
    // locality window around the victim bit (crosstalk is a neighborhood
    // effect); the window is clipped at the core boundary.
    const int lo_bit =
        config.locality_window > 0
            ? std::max(0, victim_bit - config.locality_window)
            : 0;
    const int hi_bit = config.locality_window > 0
                           ? std::min(victim_woc - 1,
                                      victim_bit + config.locality_window)
                           : victim_woc - 1;
    const int window_size = hi_bit - lo_bit;  // candidates excluding victim

    const int na = static_cast<int>(
        rng.uniform(static_cast<std::uint64_t>(config.min_aggressors),
                    static_cast<std::uint64_t>(config.max_aggressors)));
    const int ext_hi = std::min(config.max_external_aggressors, na);
    const int ext_lo = std::min(config.min_external_aggressors, ext_hi);
    int externals = static_cast<int>(
        rng.uniform(static_cast<std::uint64_t>(ext_lo),
                    static_cast<std::uint64_t>(ext_hi)));
    int internals = na - externals;
    // The window only has `window_size` candidate terminals; overflow
    // becomes external (still capped by the paper's limit of two).
    if (internals > window_size) {
      const int spill = internals - window_size;
      internals = window_size;
      externals = std::min(externals + spill, config.max_external_aggressors);
    }

    if (internals > 0) {
      // Distinct bits within the window, excluding the victim bit.
      auto picks =
          rng.sample_indices(static_cast<std::size_t>(window_size),
                             static_cast<std::size_t>(internals));
      for (const std::size_t pick : picks) {
        int bit = lo_bit + static_cast<int>(pick);
        if (bit >= victim_bit) ++bit;
        p.set(terminals.terminal(victim_core, bit), random_transition(rng));
      }
    }
    // The idle polarity (all-0 or all-1) of the quiescent neighborhood is a
    // per-pattern property of the bundle bias.
    const SigValue idle =
        rng.chance(0.5) ? SigValue::kStable0 : SigValue::kStable1;
    if (config.quiet_neighbors && config.locality_window > 0) {
      // Every other neighbor in the coupling window stays quiescent so the
      // injected noise is deterministic.
      for (int bit = lo_bit; bit <= hi_bit; ++bit) {
        const int t = terminals.terminal(victim_core, bit);
        if (p.at(t) == SigValue::kDontCare) p.set(t, idle);
      }
    }
    for (int e = 0; e < externals; ++e) {
      // A random terminal of a random *other* core; collisions with an
      // already-assigned terminal simply keep the earlier value. The
      // external aggressor is routed through the victim's bundle, so its
      // own routing neighbors on that core must be controlled as well
      // (half-width quiet window).
      const int other = [&] {
        if (config.external_core_ring > 0) {
          // A floorplan neighbor: core index within ±ring, clipped at the
          // SOC boundary (no wrap — module order is a 1-D floorplan proxy).
          const int lo = std::max(0, victim_core - config.external_core_ring);
          const int hi = std::min(cores - 1,
                                  victim_core + config.external_core_ring);
          if (hi > lo) {
            const int pick = static_cast<int>(
                rng.uniform(static_cast<std::uint64_t>(lo),
                            static_cast<std::uint64_t>(hi - 1)));
            return pick + (pick >= victim_core ? 1 : 0);
          }
        }
        const int pick =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(cores - 1)));
        return pick + (pick >= victim_core ? 1 : 0);
      }();
      const int other_woc = terminals.woc(other);
      const int bit =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(other_woc)));
      const int t = terminals.terminal(other, bit);
      if (p.at(t) == SigValue::kDontCare) p.set(t, random_transition(rng));
      if (config.quiet_neighbors && config.locality_window > 0) {
        const int half = std::max(1, config.locality_window / 2);
        for (int b = std::max(0, bit - half);
             b <= std::min(other_woc - 1, bit + half); ++b) {
          const int tq = terminals.terminal(other, b);
          if (p.at(tq) == SigValue::kDontCare) p.set(tq, idle);
        }
      }
    }

    // Shared bus postfix: with probability bus_use_probability the pattern
    // occupies 1..Na distinct lines, all triggered from the victim core
    // boundary.
    if (config.bus_width > 0 && rng.chance(config.bus_use_probability)) {
      const int occupied = static_cast<int>(rng.uniform(
          1, static_cast<std::uint64_t>(
                 std::min(na, config.bus_width))));
      auto lines = rng.sample_indices(
          static_cast<std::size_t>(config.bus_width),
          static_cast<std::size_t>(occupied));
      for (const std::size_t line : lines) {
        p.set_bus(static_cast<int>(line), victim_core);
      }
    }

    patterns.push_back(std::move(p));
  }
  return patterns;
}

std::vector<SiPattern> generate_topology_patterns(
    const Topology& topology, const TerminalSpace& terminals,
    std::int64_t count, const TopologyPatternConfig& config, Rng& rng) {
  if (count < 0) {
    throw std::invalid_argument("generate_topology_patterns: negative count");
  }
  if (topology.nets.empty()) {
    throw std::invalid_argument("generate_topology_patterns: no nets");
  }
  if (config.window < 0 || config.aggressor_probability < 0.0 ||
      config.aggressor_probability > 1.0 ||
      config.bus_use_probability < 0.0 ||
      config.bus_use_probability > 1.0 || config.max_bus_bits < 0) {
    throw std::invalid_argument("generate_topology_patterns: bad config");
  }

  std::vector<SiPattern> patterns;
  patterns.reserve(static_cast<std::size_t>(count));
  for (std::int64_t n = 0; n < count; ++n) {
    SiPattern p;
    const int victim_net = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(topology.nets.size())));
    const Net& victim =
        topology.nets[static_cast<std::size_t>(victim_net)];
    p.set(victim.driver_terminal, random_victim_value(rng));

    const SigValue idle =
        rng.chance(0.5) ? SigValue::kStable0 : SigValue::kStable1;
    for (const int neighbor : topology.neighbors(victim_net, config.window)) {
      const int t = topology.nets[static_cast<std::size_t>(neighbor)]
                        .driver_terminal;
      if (p.at(t) != SigValue::kDontCare) continue;  // shared driver
      p.set(t, rng.chance(config.aggressor_probability)
                   ? random_transition(rng)
                   : idle);
    }

    if (topology.bus && config.max_bus_bits > 0 &&
        rng.chance(config.bus_use_probability)) {
      const int victim_core = terminals.core_of(victim.driver_terminal);
      const int occupied = static_cast<int>(rng.uniform(
          1, static_cast<std::uint64_t>(
                 std::min(config.max_bus_bits, topology.bus->width))));
      for (const auto line : rng.sample_indices(
               static_cast<std::size_t>(topology.bus->width),
               static_cast<std::size_t>(occupied))) {
        p.set_bus(static_cast<int>(line), victim_core);
      }
    }
    patterns.push_back(std::move(p));
  }
  return patterns;
}

std::vector<SiPattern> generate_ma_patterns(const Topology& topology,
                                            const TerminalSpace& terminals,
                                            int aggressor_window) {
  (void)terminals;
  if (aggressor_window < 0) {
    throw std::invalid_argument("generate_ma_patterns: negative window");
  }
  // The six MA faults: (victim value, aggressor direction).
  struct MaCase {
    SigValue victim;
    SigValue aggressor;
  };
  constexpr MaCase kCases[] = {
      {SigValue::kStable0, SigValue::kRise},  // positive glitch
      {SigValue::kStable1, SigValue::kFall},  // negative glitch
      {SigValue::kRise, SigValue::kFall},     // rising delay
      {SigValue::kFall, SigValue::kRise},     // falling delay
      {SigValue::kRise, SigValue::kRise},     // rising speedup
      {SigValue::kFall, SigValue::kFall},     // falling speedup
  };

  std::vector<SiPattern> patterns;
  patterns.reserve(topology.nets.size() * 6);
  for (const Net& victim : topology.nets) {
    const auto neighbor_ids = topology.neighbors(victim.id, aggressor_window);
    for (const MaCase& ma : kCases) {
      SiPattern p;
      p.set(victim.driver_terminal, ma.victim);
      for (const int net_id : neighbor_ids) {
        const int t =
            topology.nets[static_cast<std::size_t>(net_id)].driver_terminal;
        if (p.at(t) == SigValue::kDontCare) p.set(t, ma.aggressor);
      }
      patterns.push_back(std::move(p));
    }
  }
  return patterns;
}

std::vector<SiPattern> generate_mt_patterns(const Topology& topology,
                                            const TerminalSpace& terminals,
                                            int k) {
  (void)terminals;
  if (k < 0 || k > 12) {
    throw std::invalid_argument(
        "generate_mt_patterns: locality factor must be in [0, 12]");
  }
  constexpr SigValue kVictimValues[] = {SigValue::kStable0, SigValue::kStable1,
                                        SigValue::kRise, SigValue::kFall};

  std::vector<SiPattern> patterns;
  for (const Net& victim : topology.nets) {
    const auto neighbor_ids = topology.neighbors(victim.id, k);
    const int na = static_cast<int>(neighbor_ids.size());
    const std::uint64_t combos = std::uint64_t{1} << na;
    for (const SigValue victim_value : kVictimValues) {
      for (std::uint64_t mask = 0; mask < combos; ++mask) {
        SiPattern p;
        p.set(victim.driver_terminal, victim_value);
        bool consistent = true;
        for (int a = 0; a < na; ++a) {
          const int t = topology.nets[static_cast<std::size_t>(
                                          neighbor_ids[static_cast<
                                              std::size_t>(a)])]
                            .driver_terminal;
          const SigValue want = (mask >> a) & 1 ? SigValue::kRise
                                                : SigValue::kFall;
          const SigValue have = p.at(t);
          if (have == SigValue::kDontCare) {
            p.set(t, want);
          } else if (have != want) {
            consistent = false;  // two nets share a driver terminal
            break;
          }
        }
        if (consistent) patterns.push_back(std::move(p));
      }
    }
  }
  return patterns;
}

}  // namespace sitam
