#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>
#include <string>

namespace sitam {

std::int64_t Hypergraph::total_vertex_weight() const {
  return std::accumulate(vertex_weights.begin(), vertex_weights.end(),
                         std::int64_t{0});
}

std::int64_t Hypergraph::total_edge_weight() const {
  std::int64_t sum = 0;
  for (const Hyperedge& e : edges) sum += e.weight;
  return sum;
}

void Hypergraph::normalize() {
  std::map<std::vector<int>, std::int64_t> merged;
  for (Hyperedge& e : edges) {
    std::sort(e.pins.begin(), e.pins.end());
    e.pins.erase(std::unique(e.pins.begin(), e.pins.end()), e.pins.end());
    if (e.pins.empty()) continue;
    merged[std::move(e.pins)] += e.weight;
  }
  edges.clear();
  edges.reserve(merged.size());
  for (auto& [pins, weight] : merged) {
    edges.push_back(Hyperedge{pins, weight});
  }
}

void Hypergraph::validate() const {
  const int v = vertex_count();
  for (std::size_t i = 0; i < vertex_weights.size(); ++i) {
    if (vertex_weights[i] < 0) {
      throw std::invalid_argument("hypergraph: negative weight on vertex " +
                                  std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Hyperedge& e = edges[i];
    if (e.weight <= 0) {
      throw std::invalid_argument("hypergraph: non-positive weight on edge " +
                                  std::to_string(i));
    }
    if (e.pins.empty()) {
      throw std::invalid_argument("hypergraph: empty edge " +
                                  std::to_string(i));
    }
    for (std::size_t p = 0; p < e.pins.size(); ++p) {
      if (e.pins[p] < 0 || e.pins[p] >= v) {
        throw std::invalid_argument("hypergraph: edge " + std::to_string(i) +
                                    " pin out of range");
      }
      if (p > 0 && e.pins[p] <= e.pins[p - 1]) {
        throw std::invalid_argument("hypergraph: edge " + std::to_string(i) +
                                    " pins not sorted/unique");
      }
    }
  }
}

bool Partition::is_cut(const Hyperedge& edge) const {
  if (edge.pins.empty()) return false;
  const int first = part_of[static_cast<std::size_t>(edge.pins.front())];
  for (const int pin : edge.pins) {
    if (part_of[static_cast<std::size_t>(pin)] != first) return true;
  }
  return false;
}

std::int64_t Partition::cut_weight(const Hypergraph& hg) const {
  std::int64_t cut = 0;
  for (const Hyperedge& e : hg.edges) {
    if (is_cut(e)) cut += e.weight;
  }
  return cut;
}

std::int64_t Partition::cut_edges(const Hypergraph& hg) const {
  std::int64_t cut = 0;
  for (const Hyperedge& e : hg.edges) {
    if (is_cut(e)) ++cut;
  }
  return cut;
}

std::vector<std::int64_t> Partition::part_weights(const Hypergraph& hg) const {
  std::vector<std::int64_t> weights(static_cast<std::size_t>(parts), 0);
  for (std::size_t v = 0; v < part_of.size(); ++v) {
    weights[static_cast<std::size_t>(part_of[v])] += hg.vertex_weights[v];
  }
  return weights;
}

double Partition::imbalance(const Hypergraph& hg) const {
  if (parts <= 0) return 0.0;
  const auto weights = part_weights(hg);
  const std::int64_t max_weight =
      *std::max_element(weights.begin(), weights.end());
  const double avg =
      static_cast<double>(hg.total_vertex_weight()) / parts;
  if (avg <= 0) return 0.0;
  return static_cast<double>(max_weight) / avg - 1.0;
}

}  // namespace sitam
