// Weighted hypergraph and partition types.
//
// Used by the horizontal SI compaction (§3): vertices are cores (weight =
// WOC count), hyperedges are distinct care-core sets (weight = number of
// patterns with that care set). The partitioner's objective — minimize the
// weight of cut hyperedges under balanced part weights — directly minimizes
// the number of remainder patterns that must span all cores.
#pragma once

#include <cstdint>
#include <vector>

namespace sitam {

struct Hyperedge {
  std::vector<int> pins;      ///< Vertex ids, kept sorted and unique.
  std::int64_t weight = 1;
};

struct Hypergraph {
  std::vector<std::int64_t> vertex_weights;
  std::vector<Hyperedge> edges;

  [[nodiscard]] int vertex_count() const {
    return static_cast<int>(vertex_weights.size());
  }
  [[nodiscard]] std::int64_t total_vertex_weight() const;
  [[nodiscard]] std::int64_t total_edge_weight() const;

  /// Sorts/uniquifies pins, drops empty edges, merges duplicate pin sets
  /// (summing weights). Call after bulk construction.
  void normalize();

  /// Throws std::invalid_argument on out-of-range pins, non-positive
  /// weights, or unsorted pins (call normalize() first).
  void validate() const;
};

struct Partition {
  std::vector<int> part_of;  ///< part id per vertex, in [0, parts).
  int parts = 0;

  /// Total weight of hyperedges spanning more than one part.
  [[nodiscard]] std::int64_t cut_weight(const Hypergraph& hg) const;
  /// Number of hyperedges spanning more than one part.
  [[nodiscard]] std::int64_t cut_edges(const Hypergraph& hg) const;
  /// Vertex weight per part.
  [[nodiscard]] std::vector<std::int64_t> part_weights(
      const Hypergraph& hg) const;
  /// max(part weight) / (total/parts) − 1; 0 means perfectly balanced.
  [[nodiscard]] double imbalance(const Hypergraph& hg) const;
  /// True iff `edge` has pins in at least two parts.
  [[nodiscard]] bool is_cut(const Hyperedge& edge) const;
};

}  // namespace sitam
