// Multilevel k-way hypergraph partitioning (the hMetis substitute).
//
// Pipeline per bisection: heavy-edge coarsening -> greedy BFS-growth initial
// partition (multi-start) -> Fiduccia–Mattheyses refinement with rollback to
// the best prefix -> uncoarsening with FM at every level. k-way partitions
// are produced by recursive bisection with proportional weight targets;
// hyperedges cut at an outer level are excluded from the subproblems, so the
// objective is exactly the weight of hyperedges spanning more than one part.
#pragma once

#include <cstdint>

#include "hypergraph/hypergraph.h"
#include "util/rng.h"

namespace sitam {

struct PartitionConfig {
  /// Balance tolerance: a part may weigh up to (1+epsilon) * its
  /// proportional target (and never less than the heaviest single vertex —
  /// otherwise some instances would be infeasible).
  double epsilon = 0.10;
  /// Independent multi-start attempts per bisection; best cut wins.
  int random_starts = 8;
  /// Maximum FM passes per refinement stage.
  int max_fm_passes = 16;
  /// Coarsening stops at this many vertices.
  int coarsen_limit = 48;
  std::uint64_t seed = 0x5eedULL;
};

/// Partitions `hg` into `k` parts. Throws std::invalid_argument for k < 1 or
/// an invalid hypergraph. For k >= vertex_count() every vertex gets its own
/// part. Deterministic for a fixed config.
[[nodiscard]] Partition partition_hypergraph(const Hypergraph& hg, int k,
                                             const PartitionConfig& config = {});

}  // namespace sitam
