#include "hypergraph/partition.h"

#include <algorithm>
#include <array>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "util/check.h"

namespace sitam {

namespace {

/// Incidence structure: edge list per vertex.
std::vector<std::vector<int>> build_incidence(const Hypergraph& hg) {
  std::vector<std::vector<int>> inc(
      static_cast<std::size_t>(hg.vertex_count()));
  for (std::size_t e = 0; e < hg.edges.size(); ++e) {
    for (const int v : hg.edges[e].pins) {
      inc[static_cast<std::size_t>(v)].push_back(static_cast<int>(e));
    }
  }
  return inc;
}

// ---------------------------------------------------------------------------
// Bisection working state
// ---------------------------------------------------------------------------

struct BisectionState {
  const Hypergraph* hg = nullptr;
  const std::vector<std::vector<int>>* incidence = nullptr;
  std::vector<std::uint8_t> side;          // 0 or 1 per vertex
  std::vector<std::array<int, 2>> pins_on;  // per edge: pins on each side
  std::int64_t side_weight[2] = {0, 0};
  std::int64_t limit[2] = {0, 0};
  std::int64_t cut = 0;

  void init(const Hypergraph& graph,
            const std::vector<std::vector<int>>& inc,
            std::vector<std::uint8_t> sides, std::int64_t limit0,
            std::int64_t limit1) {
    hg = &graph;
    incidence = &inc;
    side = std::move(sides);
    limit[0] = limit0;
    limit[1] = limit1;
    side_weight[0] = side_weight[1] = 0;
    for (std::size_t v = 0; v < side.size(); ++v) {
      side_weight[side[v]] += graph.vertex_weights[v];
    }
    pins_on.assign(graph.edges.size(), {0, 0});
    cut = 0;
    for (std::size_t e = 0; e < graph.edges.size(); ++e) {
      for (const int v : graph.edges[e].pins) {
        ++pins_on[e][side[static_cast<std::size_t>(v)]];
      }
      if (pins_on[e][0] > 0 && pins_on[e][1] > 0) cut += graph.edges[e].weight;
    }
  }

  /// FM gain of moving `v` to the other side: positive = cut decreases.
  [[nodiscard]] std::int64_t gain(int v) const {
    std::int64_t g = 0;
    const int from = side[static_cast<std::size_t>(v)];
    const int to = 1 - from;
    for (const int e : (*incidence)[static_cast<std::size_t>(v)]) {
      const auto& counts = pins_on[static_cast<std::size_t>(e)];
      const std::int64_t w = hg->edges[static_cast<std::size_t>(e)].weight;
      if (counts[from] == 1) g += w;   // edge becomes uncut
      if (counts[to] == 0) g -= w;     // edge becomes cut
    }
    return g;
  }

  [[nodiscard]] std::int64_t excess() const {
    return std::max<std::int64_t>(0, side_weight[0] - limit[0]) +
           std::max<std::int64_t>(0, side_weight[1] - limit[1]);
  }

  /// True iff moving `v` keeps (or repairs) balance.
  [[nodiscard]] bool feasible(int v) const {
    const int from = side[static_cast<std::size_t>(v)];
    const int to = 1 - from;
    const std::int64_t w = hg->vertex_weights[static_cast<std::size_t>(v)];
    const std::int64_t new_to = side_weight[to] + w;
    const std::int64_t new_from = side_weight[from] - w;
    const std::int64_t new_excess =
        std::max<std::int64_t>(0, new_to - limit[to]) +
        std::max<std::int64_t>(0, new_from - limit[from]);
    const std::int64_t old_excess = excess();
    if (old_excess > 0) return new_excess < old_excess;
    return new_to <= limit[to];
  }

  void move(int v) {
    const int from = side[static_cast<std::size_t>(v)];
    const int to = 1 - from;
    const std::int64_t w = hg->vertex_weights[static_cast<std::size_t>(v)];
    for (const int e : (*incidence)[static_cast<std::size_t>(v)]) {
      auto& counts = pins_on[static_cast<std::size_t>(e)];
      const std::int64_t ew = hg->edges[static_cast<std::size_t>(e)].weight;
      const bool was_cut = counts[0] > 0 && counts[1] > 0;
      --counts[from];
      ++counts[to];
      const bool now_cut = counts[0] > 0 && counts[1] > 0;
      if (was_cut && !now_cut) cut -= ew;
      if (!was_cut && now_cut) cut += ew;
    }
    side_weight[from] -= w;
    side_weight[to] += w;
    side[static_cast<std::size_t>(v)] = static_cast<std::uint8_t>(to);
  }
};

/// One FM pass with rollback to the best prefix; returns true if the pass
/// strictly improved (cut, excess) lexicographically.
bool fm_pass(BisectionState& state) {
  const int n = state.hg->vertex_count();
  std::vector<bool> locked(static_cast<std::size_t>(n), false);
  std::vector<int> move_order;
  move_order.reserve(static_cast<std::size_t>(n));

  const std::int64_t start_cut = state.cut;
  const std::int64_t start_excess = state.excess();
  std::int64_t best_cut = start_cut;
  std::int64_t best_excess = start_excess;
  int best_prefix = 0;

  for (int step = 0; step < n; ++step) {
    int pick = -1;
    std::int64_t pick_gain = std::numeric_limits<std::int64_t>::min();
    for (int v = 0; v < n; ++v) {
      if (locked[static_cast<std::size_t>(v)] || !state.feasible(v)) continue;
      const std::int64_t g = state.gain(v);
      if (g > pick_gain) {
        pick_gain = g;
        pick = v;
      }
    }
    if (pick < 0) break;
    state.move(pick);
    locked[static_cast<std::size_t>(pick)] = true;
    move_order.push_back(pick);
    const std::int64_t ex = state.excess();
    if (state.cut < best_cut ||
        (state.cut == best_cut && ex < best_excess)) {
      best_cut = state.cut;
      best_excess = ex;
      best_prefix = static_cast<int>(move_order.size());
    }
  }

  // Roll back everything after the best prefix.
  for (int i = static_cast<int>(move_order.size()) - 1; i >= best_prefix;
       --i) {
    state.move(move_order[static_cast<std::size_t>(i)]);
  }
  return best_cut < start_cut ||
         (best_cut == start_cut && best_excess < start_excess);
}

void refine(BisectionState& state, int max_passes) {
  for (int pass = 0; pass < max_passes; ++pass) {
    if (!fm_pass(state)) break;
  }
}

// ---------------------------------------------------------------------------
// Initial partition: greedy BFS growth to the target weight.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> grow_initial(const Hypergraph& hg,
                                       const std::vector<std::vector<int>>& inc,
                                       std::int64_t target0, Rng& rng) {
  const int n = hg.vertex_count();
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 1);
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<int> frontier;
  std::int64_t weight0 = 0;

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::size_t next_seed = 0;

  while (weight0 < target0) {
    int v = -1;
    while (!frontier.empty()) {
      const int cand = frontier.back();
      frontier.pop_back();
      if (!visited[static_cast<std::size_t>(cand)]) {
        v = cand;
        break;
      }
    }
    if (v < 0) {
      while (next_seed < order.size() &&
             visited[static_cast<std::size_t>(order[next_seed])]) {
        ++next_seed;
      }
      if (next_seed >= order.size()) break;
      v = order[next_seed];
    }
    visited[static_cast<std::size_t>(v)] = true;
    const std::int64_t w = hg.vertex_weights[static_cast<std::size_t>(v)];
    // Stop before overshooting badly: add the vertex only if it brings us
    // closer to the target (always add when part 0 is still empty).
    if (weight0 > 0 && weight0 + w - target0 > target0 - weight0) continue;
    side[static_cast<std::size_t>(v)] = 0;
    weight0 += w;
    for (const int e : inc[static_cast<std::size_t>(v)]) {
      for (const int u : hg.edges[static_cast<std::size_t>(e)].pins) {
        if (!visited[static_cast<std::size_t>(u)]) frontier.push_back(u);
      }
    }
  }
  return side;
}

// ---------------------------------------------------------------------------
// Coarsening: heavy-edge matching for hypergraphs.
// ---------------------------------------------------------------------------

struct CoarseLevel {
  Hypergraph graph;
  std::vector<int> fine_to_coarse;  // indexed by fine vertex
};

CoarseLevel coarsen_once(const Hypergraph& hg,
                         const std::vector<std::vector<int>>& inc,
                         std::int64_t max_cluster_weight, Rng& rng) {
  const int n = hg.vertex_count();
  std::vector<int> match(static_cast<std::size_t>(n), -1);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::vector<std::int64_t> score(static_cast<std::size_t>(n), 0);
  std::vector<int> touched;
  for (const int v : order) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    touched.clear();
    for (const int e : inc[static_cast<std::size_t>(v)]) {
      const Hyperedge& edge = hg.edges[static_cast<std::size_t>(e)];
      if (edge.pins.size() < 2) continue;
      // Heavy-edge score: weight spread over the edge's other pins.
      const std::int64_t contrib =
          edge.weight * 1000 / static_cast<std::int64_t>(edge.pins.size() - 1);
      for (const int u : edge.pins) {
        if (u == v || match[static_cast<std::size_t>(u)] != -1) continue;
        if (hg.vertex_weights[static_cast<std::size_t>(u)] +
                hg.vertex_weights[static_cast<std::size_t>(v)] >
            max_cluster_weight) {
          continue;
        }
        if (score[static_cast<std::size_t>(u)] == 0) touched.push_back(u);
        score[static_cast<std::size_t>(u)] += contrib;
      }
    }
    int best = -1;
    std::int64_t best_score = 0;
    for (const int u : touched) {
      if (score[static_cast<std::size_t>(u)] > best_score) {
        best_score = score[static_cast<std::size_t>(u)];
        best = u;
      }
      score[static_cast<std::size_t>(u)] = 0;
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    }
  }

  CoarseLevel level;
  level.fine_to_coarse.assign(static_cast<std::size_t>(n), -1);
  int coarse_count = 0;
  for (int v = 0; v < n; ++v) {
    if (level.fine_to_coarse[static_cast<std::size_t>(v)] != -1) continue;
    const int buddy = match[static_cast<std::size_t>(v)];
    level.fine_to_coarse[static_cast<std::size_t>(v)] = coarse_count;
    if (buddy != -1) {
      level.fine_to_coarse[static_cast<std::size_t>(buddy)] = coarse_count;
    }
    ++coarse_count;
  }

  level.graph.vertex_weights.assign(static_cast<std::size_t>(coarse_count),
                                    0);
  for (int v = 0; v < n; ++v) {
    level.graph.vertex_weights[static_cast<std::size_t>(
        level.fine_to_coarse[static_cast<std::size_t>(v)])] +=
        hg.vertex_weights[static_cast<std::size_t>(v)];
  }
  for (const Hyperedge& e : hg.edges) {
    Hyperedge coarse_edge;
    coarse_edge.weight = e.weight;
    for (const int v : e.pins) {
      coarse_edge.pins.push_back(
          level.fine_to_coarse[static_cast<std::size_t>(v)]);
    }
    std::sort(coarse_edge.pins.begin(), coarse_edge.pins.end());
    coarse_edge.pins.erase(
        std::unique(coarse_edge.pins.begin(), coarse_edge.pins.end()),
        coarse_edge.pins.end());
    if (coarse_edge.pins.size() >= 2) {
      level.graph.edges.push_back(std::move(coarse_edge));
    }
  }
  level.graph.normalize();
  return level;
}

// ---------------------------------------------------------------------------
// One complete multilevel bisection.
// ---------------------------------------------------------------------------

struct BisectionResult {
  std::vector<std::uint8_t> side;
  std::int64_t cut = 0;
  std::int64_t excess = 0;
};

BisectionResult multilevel_bisect(const Hypergraph& hg, std::int64_t target0,
                                  const PartitionConfig& config, Rng& rng) {
  const std::int64_t total = hg.total_vertex_weight();
  const std::int64_t target1 = total - target0;
  const std::int64_t max_vertex =
      hg.vertex_weights.empty()
          ? 0
          : *std::max_element(hg.vertex_weights.begin(),
                              hg.vertex_weights.end());
  const auto limit_for = [&](std::int64_t target) {
    return std::max<std::int64_t>(
        static_cast<std::int64_t>(
            static_cast<double>(target) * (1.0 + config.epsilon)),
        max_vertex);
  };
  const std::int64_t limit0 = limit_for(target0);
  const std::int64_t limit1 = limit_for(target1);

  // Coarsening chain. Cluster weights are capped so coarse vertices stay
  // placeable on either side.
  std::vector<CoarseLevel> levels;
  const Hypergraph* current = &hg;
  while (current->vertex_count() > config.coarsen_limit) {
    const auto inc = build_incidence(*current);
    const std::int64_t max_cluster =
        std::max<std::int64_t>(1, std::min(target0, target1) / 2);
    CoarseLevel level = coarsen_once(*current, inc, max_cluster, rng);
    if (level.graph.vertex_count() >=
        current->vertex_count() * 95 / 100) {
      break;  // matching stalled; coarsening further is pointless
    }
    levels.push_back(std::move(level));
    current = &levels.back().graph;
  }

  // Multi-start initial partition + FM at the coarsest level.
  const auto coarse_inc = build_incidence(*current);
  BisectionState best_state;
  bool have_best = false;
  for (int attempt = 0; attempt < std::max(1, config.random_starts);
       ++attempt) {
    BisectionState state;
    state.init(*current, coarse_inc,
               grow_initial(*current, coarse_inc, target0, rng), limit0,
               limit1);
    refine(state, config.max_fm_passes);
    if (!have_best || state.cut < best_state.cut ||
        (state.cut == best_state.cut &&
         state.excess() < best_state.excess())) {
      best_state = state;
      have_best = true;
    }
  }
  SITAM_CHECK(have_best);
  std::vector<std::uint8_t> side = std::move(best_state.side);

  // Uncoarsen with refinement at every level.
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const Hypergraph& fine =
        (std::next(it) == levels.rend()) ? hg : std::next(it)->graph;
    std::vector<std::uint8_t> fine_side(
        static_cast<std::size_t>(fine.vertex_count()));
    for (std::size_t v = 0; v < fine_side.size(); ++v) {
      fine_side[v] = side[static_cast<std::size_t>(it->fine_to_coarse[v])];
    }
    const auto fine_inc = build_incidence(fine);
    BisectionState state;
    state.init(fine, fine_inc, std::move(fine_side), limit0, limit1);
    refine(state, config.max_fm_passes);
    side = std::move(state.side);
  }

  // When there was no coarsening at all, `side` is already at full size but
  // unrefined against hg only if levels was empty; refine once more then.
  if (levels.empty()) {
    // `side` was refined on *current == hg already; nothing to do.
  }

  BisectionState final_state;
  const auto inc = build_incidence(hg);
  final_state.init(hg, inc, std::move(side), limit0, limit1);
  refine(final_state, config.max_fm_passes);

  BisectionResult result;
  result.cut = final_state.cut;
  result.excess = final_state.excess();
  result.side = std::move(final_state.side);
  return result;
}

// ---------------------------------------------------------------------------
// Recursive bisection driver.
// ---------------------------------------------------------------------------

void recurse(const Hypergraph& hg, const std::vector<int>& vertex_ids, int k,
             int first_part, const PartitionConfig& config, Rng& rng,
             std::vector<int>& part_of) {
  if (k <= 1 || hg.vertex_count() == 0) {
    for (const int id : vertex_ids) {
      part_of[static_cast<std::size_t>(id)] = first_part;
    }
    return;
  }
  if (hg.vertex_count() == 1) {
    part_of[static_cast<std::size_t>(vertex_ids[0])] = first_part;
    return;
  }

  const int k0 = (k + 1) / 2;
  const int k1 = k - k0;
  const std::int64_t total = hg.total_vertex_weight();
  const std::int64_t target0 = total * k0 / k;

  const BisectionResult bisection =
      multilevel_bisect(hg, target0, config, rng);

  // Build the two sub-hypergraphs; edges cut here never contribute again.
  for (int sub = 0; sub < 2; ++sub) {
    Hypergraph sub_hg;
    std::vector<int> sub_ids;
    std::vector<int> remap(static_cast<std::size_t>(hg.vertex_count()), -1);
    for (int v = 0; v < hg.vertex_count(); ++v) {
      if (bisection.side[static_cast<std::size_t>(v)] == sub) {
        remap[static_cast<std::size_t>(v)] =
            static_cast<int>(sub_hg.vertex_weights.size());
        sub_hg.vertex_weights.push_back(
            hg.vertex_weights[static_cast<std::size_t>(v)]);
        sub_ids.push_back(vertex_ids[static_cast<std::size_t>(v)]);
      }
    }
    for (const Hyperedge& e : hg.edges) {
      Hyperedge sub_edge;
      sub_edge.weight = e.weight;
      bool crosses = false;
      for (const int v : e.pins) {
        if (bisection.side[static_cast<std::size_t>(v)] == sub) {
          sub_edge.pins.push_back(remap[static_cast<std::size_t>(v)]);
        } else {
          crosses = true;
        }
      }
      if (!crosses && sub_edge.pins.size() >= 2) {
        sub_hg.edges.push_back(std::move(sub_edge));
      }
    }
    recurse(sub_hg, sub_ids, sub == 0 ? k0 : k1,
            sub == 0 ? first_part : first_part + k0, config, rng, part_of);
  }
}

}  // namespace

Partition partition_hypergraph(const Hypergraph& hg, int k,
                               const PartitionConfig& config) {
  hg.validate();
  if (k < 1) {
    throw std::invalid_argument("partition_hypergraph: k must be >= 1");
  }
  const int n = hg.vertex_count();
  Partition result;
  result.parts = k;
  result.part_of.assign(static_cast<std::size_t>(n), 0);
  if (k == 1 || n == 0) return result;
  if (k >= n) {
    for (int v = 0; v < n; ++v) result.part_of[static_cast<std::size_t>(v)] = v;
    return result;
  }

  Rng rng(config.seed);
  std::vector<int> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  recurse(hg, ids, k, 0, config, rng, result.part_of);
  return result;
}

}  // namespace sitam
