#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace sitam {

void JsonWriter::before_value(bool is_key) {
  SITAM_CHECK_MSG(!done_, "JsonWriter: document already complete");
  if (is_key) {
    SITAM_CHECK_MSG(!scopes_.empty() && scopes_.back() == Scope::kObject,
                    "JsonWriter: key outside of object");
    SITAM_CHECK_MSG(!expecting_value_, "JsonWriter: key after key");
  } else {
    if (!scopes_.empty() && scopes_.back() == Scope::kObject) {
      SITAM_CHECK_MSG(expecting_value_,
                      "JsonWriter: value without key inside object");
    }
  }
  if (needs_comma_ && !expecting_value_) out_ += ',';
}

void JsonWriter::append_escaped(std::string_view text) {
  out_ += '"';
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out_ += buf;
        } else {
          out_ += ch;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  before_value(false);
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  needs_comma_ = false;
  expecting_value_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SITAM_CHECK_MSG(!scopes_.empty() && scopes_.back() == Scope::kObject,
                  "JsonWriter: end_object without open object");
  SITAM_CHECK_MSG(!expecting_value_, "JsonWriter: dangling key");
  out_ += '}';
  scopes_.pop_back();
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value(false);
  out_ += '[';
  scopes_.push_back(Scope::kArray);
  needs_comma_ = false;
  expecting_value_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SITAM_CHECK_MSG(!scopes_.empty() && scopes_.back() == Scope::kArray,
                  "JsonWriter: end_array without open array");
  out_ += ']';
  scopes_.pop_back();
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  before_value(true);
  append_escaped(name);
  out_ += ':';
  expecting_value_ = true;
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value(false);
  append_escaped(text);
  expecting_value_ = false;
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value(false);
  out_ += std::to_string(number);
  expecting_value_ = false;
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value(false);
  if (std::isfinite(number)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", number);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  expecting_value_ = false;
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value(false);
  out_ += flag ? "true" : "false";
  expecting_value_ = false;
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value(false);
  out_ += "null";
  expecting_value_ = false;
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  SITAM_CHECK_MSG(scopes_.empty() && done_,
                  "JsonWriter: document incomplete");
  return out_;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

JsonParseError::JsonParseError(const std::string& reason, std::size_t offset)
    : std::runtime_error("json: " + reason + " at offset " +
                         std::to_string(offset)),
      offset_(offset) {}

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw JsonParseError(std::string("value is not ") + wanted, 0);
}

/// Strict single-pass parser over a string_view. Every throw names the
/// current byte offset; the cursor never reads past end().
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_whitespace();
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& reason) const {
    throw JsonParseError(reason, pos_);
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char ch = peek();
    ++pos_;
    return ch;
  }

  void expect(char ch, const char* context) {
    if (at_end() || text_[pos_] != ch) {
      fail(std::string("expected '") + ch + "' " + context);
    }
    ++pos_;
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char ch = text_[pos_];
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kJsonMaxDepth) fail("document nested too deeply");
    skip_whitespace();
    const char ch = peek();
    switch (ch) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("invalid literal");
      default:
        if (ch == '-' || (ch >= '0' && ch <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{', "to open object");
    std::vector<JsonValue::Member> members;
    skip_whitespace();
    if (!at_end() && text_[pos_] == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (at_end() || text_[pos_] != '"') fail("expected object key string");
      std::string key = parse_string();
      for (const JsonValue::Member& member : members) {
        if (member.first == key) fail("duplicate object key \"" + key + '"');
      }
      skip_whitespace();
      expect(':', "after object key");
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char next = take();
      if (next == '}') break;
      if (next != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[', "to open array");
    std::vector<JsonValue> items;
    skip_whitespace();
    if (!at_end() && text_[pos_] == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char next = take();
      if (next == ']') break;
      if (next != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue::make_array(std::move(items));
  }

  /// Appends the UTF-8 encoding of `code_point` to `out`.
  static void append_utf8(std::string& out, std::uint32_t code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char ch = take();
      value <<= 4;
      if (ch >= '0' && ch <= '9') {
        value |= static_cast<std::uint32_t>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        value |= static_cast<std::uint32_t>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        value |= static_cast<std::uint32_t>(ch - 'A' + 10);
      } else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  /// Validates one UTF-8 sequence starting at pos_ (whose lead byte is
  /// >= 0x80) and appends it to `out`. Rejects overlong encodings,
  /// surrogates and code points above U+10FFFF.
  void consume_utf8_sequence(std::string& out) {
    const auto lead = static_cast<unsigned char>(text_[pos_]);
    int continuation = 0;
    std::uint32_t code_point = 0;
    std::uint32_t min_value = 0;
    if ((lead & 0xE0) == 0xC0) {
      continuation = 1;
      code_point = lead & 0x1FU;
      min_value = 0x80;
    } else if ((lead & 0xF0) == 0xE0) {
      continuation = 2;
      code_point = lead & 0x0FU;
      min_value = 0x800;
    } else if ((lead & 0xF8) == 0xF0) {
      continuation = 3;
      code_point = lead & 0x07U;
      min_value = 0x10000;
    } else {
      fail("invalid UTF-8 lead byte in string");
    }
    if (pos_ + static_cast<std::size_t>(continuation) >= text_.size()) {
      fail("truncated UTF-8 sequence in string");
    }
    for (int i = 1; i <= continuation; ++i) {
      const auto byte = static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(i)]);
      if ((byte & 0xC0) != 0x80) fail("invalid UTF-8 continuation byte");
      code_point = (code_point << 6) | (byte & 0x3FU);
    }
    if (code_point < min_value) fail("overlong UTF-8 encoding");
    if (code_point >= 0xD800 && code_point <= 0xDFFF) {
      fail("UTF-8 encoded surrogate in string");
    }
    if (code_point > 0x10FFFF) fail("UTF-8 code point out of range");
    out.append(text_.substr(pos_, 1 + static_cast<std::size_t>(continuation)));
    pos_ += 1 + static_cast<std::size_t>(continuation);
  }

  std::string parse_string() {
    expect('"', "to open string");
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char ch = text_[pos_];
      if (ch == '"') {
        ++pos_;
        return out;
      }
      if (ch == '\\') {
        ++pos_;
        const char escape = take();
        switch (escape) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            std::uint32_t code_point = parse_hex4();
            if (code_point >= 0xD800 && code_point <= 0xDBFF) {
              // High surrogate: a low surrogate escape must follow.
              if (at_end() || take() != '\\' || at_end() || take() != 'u') {
                fail("unpaired high surrogate");
              }
              const std::uint32_t low = parse_hex4();
              if (low < 0xDC00 || low > 0xDFFF) {
                fail("invalid low surrogate");
              }
              code_point = 0x10000 + ((code_point - 0xD800) << 10) +
                           (low - 0xDC00);
            } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
              fail("unpaired low surrogate");
            }
            append_utf8(out, code_point);
            break;
          }
          default:
            --pos_;
            fail("invalid escape character");
        }
        continue;
      }
      const auto byte = static_cast<unsigned char>(ch);
      if (byte < 0x20) fail("unescaped control character in string");
      if (byte < 0x80) {
        out += ch;
        ++pos_;
        continue;
      }
      consume_utf8_sequence(out);
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && text_[pos_] == '-') ++pos_;
    if (at_end() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    bool integral = true;
    if (!at_end() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (at_end() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digits required after decimal point");
      }
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (at_end() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digits required in exponent");
      }
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == ERANGE || end != token.c_str() + token.size()) {
        fail("integer out of range");
      }
      return JsonValue::make_integer(static_cast<std::int64_t>(parsed));
    }
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(parsed)) {
      fail("number out of range");
    }
    return JsonValue::make_double(parsed);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool");
  return flag_;
}

std::int64_t JsonValue::as_int() const {
  if (!is_integer()) kind_error("an integer");
  return int_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  return integer_ ? static_cast<double>(int_) : number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return text_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("an array");
  return *items_;
}

const std::vector<JsonValue::Member>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error("an object");
  return *members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const Member& member : as_object()) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

JsonValue JsonValue::make_bool(bool flag) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.flag_ = flag;
  return v;
}

JsonValue JsonValue::make_integer(std::int64_t number) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.integer_ = true;
  v.int_ = number;
  return v;
}

JsonValue JsonValue::make_double(double number) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = number;
  return v;
}

JsonValue JsonValue::make_string(std::string text) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.text_ = std::move(text);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::make_shared<std::vector<JsonValue>>(std::move(items));
  return v;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::make_shared<std::vector<Member>>(std::move(members));
  return v;
}

namespace {

void dump_value(const JsonValue& value, JsonWriter& json) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      json.null();
      break;
    case JsonValue::Kind::kBool:
      json.value(value.as_bool());
      break;
    case JsonValue::Kind::kNumber:
      if (value.is_integer()) {
        json.value(value.as_int());
      } else {
        json.value(value.as_double());
      }
      break;
    case JsonValue::Kind::kString:
      json.value(value.as_string());
      break;
    case JsonValue::Kind::kArray:
      json.begin_array();
      for (const JsonValue& item : value.as_array()) dump_value(item, json);
      json.end_array();
      break;
    case JsonValue::Kind::kObject:
      json.begin_object();
      for (const JsonValue::Member& member : value.as_object()) {
        json.key(member.first);
        dump_value(member.second, json);
      }
      json.end_object();
      break;
  }
}

}  // namespace

std::string JsonValue::dump() const {
  JsonWriter json;
  dump_value(*this, json);
  return json.str();
}

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace sitam
