#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace sitam {

void JsonWriter::before_value(bool is_key) {
  SITAM_CHECK_MSG(!done_, "JsonWriter: document already complete");
  if (is_key) {
    SITAM_CHECK_MSG(!scopes_.empty() && scopes_.back() == Scope::kObject,
                    "JsonWriter: key outside of object");
    SITAM_CHECK_MSG(!expecting_value_, "JsonWriter: key after key");
  } else {
    if (!scopes_.empty() && scopes_.back() == Scope::kObject) {
      SITAM_CHECK_MSG(expecting_value_,
                      "JsonWriter: value without key inside object");
    }
  }
  if (needs_comma_ && !expecting_value_) out_ += ',';
}

void JsonWriter::append_escaped(std::string_view text) {
  out_ += '"';
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out_ += buf;
        } else {
          out_ += ch;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  before_value(false);
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  needs_comma_ = false;
  expecting_value_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SITAM_CHECK_MSG(!scopes_.empty() && scopes_.back() == Scope::kObject,
                  "JsonWriter: end_object without open object");
  SITAM_CHECK_MSG(!expecting_value_, "JsonWriter: dangling key");
  out_ += '}';
  scopes_.pop_back();
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value(false);
  out_ += '[';
  scopes_.push_back(Scope::kArray);
  needs_comma_ = false;
  expecting_value_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SITAM_CHECK_MSG(!scopes_.empty() && scopes_.back() == Scope::kArray,
                  "JsonWriter: end_array without open array");
  out_ += ']';
  scopes_.pop_back();
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  before_value(true);
  append_escaped(name);
  out_ += ':';
  expecting_value_ = true;
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value(false);
  append_escaped(text);
  expecting_value_ = false;
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value(false);
  out_ += std::to_string(number);
  expecting_value_ = false;
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value(false);
  if (std::isfinite(number)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", number);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  expecting_value_ = false;
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value(false);
  out_ += flag ? "true" : "false";
  expecting_value_ = false;
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value(false);
  out_ += "null";
  expecting_value_ = false;
  needs_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  SITAM_CHECK_MSG(scopes_.empty() && done_,
                  "JsonWriter: document incomplete");
  return out_;
}

}  // namespace sitam
