// Dependency-inversion seam between util and the observability subsystem.
//
// The subsystem DAG (SL014, docs/STATIC_ANALYSIS.md) puts util below obs:
// util must not include obs headers. ThreadPool still wants to report
// queue depth, task wait latency, and per-task trace spans — so obs
// installs this hook table when the first trace session starts
// (src/obs/pool_hooks.cpp) and util calls through it. When nothing is
// installed the cost on the hot path is one relaxed atomic load.
#pragma once

#include <cstdint>

namespace sitam {

/// Callbacks ThreadPool invokes at its observability points. All fields
/// may be nullptr (no-op). The installed table must stay alive for the
/// process (obs uses a constexpr table with static storage).
struct ThreadPoolObsHooks {
  /// Timestamp for wait-latency accounting, or -1 when tracing is off.
  std::int64_t (*enqueue_stamp_ns)() = nullptr;
  /// Queue depth observed right after an enqueue.
  void (*queue_depth)(std::int64_t depth) = nullptr;
  /// A task stamped at `enqueued_ns` just left the queue.
  void (*task_dequeued)(std::int64_t enqueued_ns) = nullptr;
  /// Runs `run(ctx)`, wrapped in a trace span when a session is active.
  void (*run_task)(void (*run)(void*), void* ctx) = nullptr;
};

/// Currently installed hook table, or nullptr. Acquire load.
[[nodiscard]] const ThreadPoolObsHooks* thread_pool_obs_hooks();

/// Installs `hooks` (release store). Pass a table with static storage
/// duration; installation is one-way and idempotent by convention.
void install_thread_pool_obs_hooks(const ThreadPoolObsHooks* hooks);

/// Role tag for the current thread ("pool-worker"). util sets it; obs
/// reads it when the thread first attaches to a trace session, so worker
/// threads are labelled even though util cannot call into obs directly.
/// `role` must point at static storage (a string literal).
void set_thread_role(const char* role);
[[nodiscard]] const char* thread_role();

}  // namespace sitam
