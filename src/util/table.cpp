#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace sitam {

void TextTable::add_column(std::string header, Align align) {
  SITAM_CHECK_MSG(rows_.empty(), "columns must be declared before rows");
  columns_.push_back(Column{std::move(header), align});
}

void TextTable::begin_row() {
  if (!rows_.empty() && !rows_.back().is_separator) {
    SITAM_CHECK_MSG(rows_.back().cells.size() == columns_.size(),
                    "previous row has " << rows_.back().cells.size()
                                        << " cells, expected "
                                        << columns_.size());
  }
  rows_.push_back(Row{});
}

void TextTable::append_cell(std::string value) {
  SITAM_CHECK_MSG(!rows_.empty() && !rows_.back().is_separator,
                  "cell() without begin_row()");
  SITAM_CHECK_MSG(rows_.back().cells.size() < columns_.size(),
                  "row already has " << columns_.size() << " cells");
  rows_.back().cells.push_back(std::move(value));
}

void TextTable::cell(std::string value) { append_cell(std::move(value)); }

void TextTable::cell(std::int64_t value) {
  append_cell(std::to_string(value));
}

void TextTable::cell(std::uint64_t value) {
  append_cell(std::to_string(value));
}

void TextTable::cell(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  append_cell(buf);
}

void TextTable::separator() {
  Row row;
  row.is_separator = true;
  rows_.push_back(std::move(row));
}

namespace {

std::string pad(const std::string& text, std::size_t width, Align align) {
  if (text.size() >= width) return text;
  const std::size_t total = width - text.size();
  switch (align) {
    case Align::kLeft:
      return text + std::string(total, ' ');
    case Align::kRight:
      return std::string(total, ' ') + text;
    case Align::kCenter: {
      const std::size_t left = total / 2;
      return std::string(left, ' ') + text + std::string(total - left, ' ');
    }
  }
  return text;
}

}  // namespace

std::string TextTable::str() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].header.size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  const auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  rule();
  os << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << ' ' << pad(columns_[c].header, widths[c], Align::kCenter) << " |";
  }
  os << '\n';
  rule();
  for (const Row& row : rows_) {
    if (row.is_separator) {
      rule();
      continue;
    }
    os << '|';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& text = c < row.cells.size() ? row.cells[c] : "";
      os << ' ' << pad(text, widths[c], columns_[c].align) << " |";
    }
    os << '\n';
  }
  rule();
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  const auto escape = [](const std::string& text) {
    if (text.find_first_of(",\"\n") == std::string::npos) return text;
    std::string out = "\"";
    for (const char ch : text) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) os << ',';
    os << escape(columns_[c].header);
  }
  os << '\n';
  for (const Row& row : rows_) {
    if (row.is_separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c != 0) os << ',';
      os << escape(row.cells[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.str();
}

}  // namespace sitam
