// Minimal streaming JSON writer (no external dependencies).
//
// Used by the CLI and benches to emit machine-readable results. Handles
// nesting, comma placement and string escaping; misuse (value without key
// inside an object, unbalanced scopes, ...) throws via SITAM_CHECK.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sitam {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits a key inside an object; must be followed by a value or scope.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(std::int64_t{number}); }
  JsonWriter& value(double number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// Finishes and returns the document; all scopes must be closed.
  [[nodiscard]] std::string str() const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void before_value(bool is_key);
  void append_escaped(std::string_view text);

  std::string out_;
  std::vector<Scope> scopes_;
  bool needs_comma_ = false;
  bool expecting_value_ = false;  // a key was just written
  bool done_ = false;             // a top-level value was completed
};

}  // namespace sitam
