// Minimal streaming JSON writer and strict recursive-descent parser (no
// external dependencies).
//
// The writer is used by the CLI and benches to emit machine-readable
// results. Handles nesting, comma placement and string escaping; misuse
// (value without key inside an object, unbalanced scopes, ...) throws via
// SITAM_CHECK.
//
// The parser exists for the serve request protocol, so it is strict by
// design: it rejects duplicate object keys, invalid UTF-8, trailing
// garbage, unpaired surrogates and documents nested deeper than
// kJsonMaxDepth with a JsonParseError that names the byte offset —
// malformed network input must become a structured error, never undefined
// behaviour or a silently half-parsed request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sitam {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits a key inside an object; must be followed by a value or scope.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(std::int64_t{number}); }
  JsonWriter& value(double number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// Finishes and returns the document; all scopes must be closed.
  [[nodiscard]] std::string str() const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void before_value(bool is_key);
  void append_escaped(std::string_view text);

  std::string out_;
  std::vector<Scope> scopes_;
  bool needs_comma_ = false;
  bool expecting_value_ = false;  // a key was just written
  bool done_ = false;             // a top-level value was completed
};

/// Parse failure: `what()` carries a human-readable reason plus the byte
/// offset where parsing stopped.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& reason, std::size_t offset);

  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Nesting bound for parsed documents; deeper input throws JsonParseError
/// (a hostile request must not be able to exhaust the parser's stack).
inline constexpr std::size_t kJsonMaxDepth = 64;

/// One parsed JSON value. Objects preserve key order (they are small in
/// every sitam document, so lookup is a linear scan); duplicate keys were
/// already rejected by the parser, making `find` unambiguous.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  /// True for numbers written without fraction/exponent that fit int64.
  [[nodiscard]] bool is_integer() const {
    return kind_ == Kind::kNumber && integer_;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; each throws JsonParseError (offset 0) on a kind
  /// mismatch so protocol code can funnel schema errors through one path.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::vector<Member>& as_object() const;

  /// Member lookup on an object; nullptr when absent. Throws on non-objects.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  // Construction helpers used by the parser (and by tests that build
  // expected values directly).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool flag);
  static JsonValue make_integer(std::int64_t number);
  static JsonValue make_double(double number);
  static JsonValue make_string(std::string text);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<Member> members);

  /// Canonical re-serialization (same escaping rules as JsonWriter, object
  /// key order preserved). Mainly for tests comparing parsed envelopes.
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool flag_ = false;
  bool integer_ = false;
  std::int64_t int_ = 0;
  double number_ = 0.0;
  std::string text_;
  // unique_ptr keeps the recursive value type movable and its empty
  // footprint small; null for non-container kinds.
  std::shared_ptr<std::vector<JsonValue>> items_;
  std::shared_ptr<std::vector<Member>> members_;
};

/// Parses exactly one JSON document; trailing non-whitespace is an error.
/// Throws JsonParseError on any malformed input (syntax, duplicate object
/// key, invalid UTF-8, unpaired surrogate escape, depth > kJsonMaxDepth,
/// out-of-range number).
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace sitam
