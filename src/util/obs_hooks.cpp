#include "util/obs_hooks.h"

#include <atomic>

namespace sitam {

namespace {

// Sanctioned process-wide seam state (allowlisted SL012): the hook table
// pointer is written once by obs and read concurrently by every pool.
std::atomic<const ThreadPoolObsHooks*> g_thread_pool_hooks{nullptr};
thread_local const char* t_thread_role = nullptr;

}  // namespace

const ThreadPoolObsHooks* thread_pool_obs_hooks() {
  return g_thread_pool_hooks.load(std::memory_order_acquire);
}

void install_thread_pool_obs_hooks(const ThreadPoolObsHooks* hooks) {
  g_thread_pool_hooks.store(hooks, std::memory_order_release);
}

void set_thread_role(const char* role) { t_thread_role = role; }

const char* thread_role() { return t_thread_role; }

}  // namespace sitam
