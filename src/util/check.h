// Lightweight runtime invariant checking.
//
// SITAM_CHECK is always on (the optimizer state machines are cheap relative
// to the algorithms they guard) and throws std::logic_error so that both the
// tests and the benches fail loudly instead of producing silently wrong
// tables. Boundary checks — validating inputs at an API edge — must stay
// SITAM_CHECK.
//
// SITAM_DCHECK is its debug-only sibling for per-iteration checks inside
// hot loops, where a profile shows the check itself dominating. It compiles
// to nothing in plain Release builds but stays armed in Debug and in every
// sanitizer build (the sanitizer presets define SITAM_ENABLE_DCHECKS), so
// the invariant is still exercised by `ctest -L asan` / `-L tsan` runs.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sitam::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "SITAM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace sitam::detail

#define SITAM_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::sitam::detail::check_failed(#expr, __FILE__, __LINE__, "");        \
  } while (false)

#define SITAM_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream sitam_check_os_;                                  \
      sitam_check_os_ << msg;                                              \
      ::sitam::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                    sitam_check_os_.str());                \
    }                                                                      \
  } while (false)

#if !defined(NDEBUG) || defined(SITAM_ENABLE_DCHECKS)
#define SITAM_DCHECKS_ENABLED 1
#else
#define SITAM_DCHECKS_ENABLED 0
#endif

#if SITAM_DCHECKS_ENABLED
#define SITAM_DCHECK(expr) SITAM_CHECK(expr)
#define SITAM_DCHECK_MSG(expr, msg) SITAM_CHECK_MSG(expr, msg)
#else
// Keep the expression syntactically checked (and ODR-used symbols alive)
// without evaluating it.
#define SITAM_DCHECK(expr)                                                 \
  do {                                                                     \
    if (false) static_cast<void>(expr);                                    \
  } while (false)
#define SITAM_DCHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (false) static_cast<void>(expr);                                    \
  } while (false)
#endif
