// Lightweight runtime invariant checking.
//
// SITAM_CHECK is always on (the optimizer state machines are cheap relative
// to the algorithms they guard) and throws std::logic_error so that both the
// tests and the benches fail loudly instead of producing silently wrong
// tables.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sitam::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "SITAM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace sitam::detail

#define SITAM_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::sitam::detail::check_failed(#expr, __FILE__, __LINE__, "");        \
  } while (false)

#define SITAM_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream sitam_check_os_;                                  \
      sitam_check_os_ << msg;                                              \
      ::sitam::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                    sitam_check_os_.str());                \
    }                                                                      \
  } while (false)
