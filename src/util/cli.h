// Minimal command-line flag parsing shared by the bench and example
// binaries: `--name=value`, `--name value` and boolean `--name` forms.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sitam {

class CliArgs {
 public:
  /// Parses argv; throws std::invalid_argument on malformed flags
  /// (anything not starting with "--").
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;
  [[nodiscard]] std::string get_or(const std::string& name,
                                   std::string fallback) const;
  [[nodiscard]] std::int64_t get_or(const std::string& name,
                                    std::int64_t fallback) const;
  [[nodiscard]] double get_or(const std::string& name, double fallback) const;

  /// Parses a comma-separated integer list, e.g. --widths=8,16,24.
  [[nodiscard]] std::vector<std::int64_t> get_list_or(
      const std::string& name, std::vector<std::int64_t> fallback) const;

  /// Parses a comma-separated string list, e.g. --socs=d695,p93791.
  /// Empty tokens are dropped ("a,,b" -> {"a","b"}).
  [[nodiscard]] std::vector<std::string> get_strings_or(
      const std::string& name, std::vector<std::string> fallback) const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace sitam
