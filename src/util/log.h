// Leveled logging to stderr. Default level is kWarn so that library code is
// silent in tests/benches unless something is actually wrong; the harnesses
// raise it to kInfo with --verbose.
#pragma once

#include <sstream>
#include <string>

namespace sitam {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_write(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_write(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace sitam

#define SITAM_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::sitam::log_level())) \
    ;                                                         \
  else                                                        \
    ::sitam::detail::LogLine(level)

#define SITAM_DEBUG SITAM_LOG(::sitam::LogLevel::kDebug)
#define SITAM_INFO SITAM_LOG(::sitam::LogLevel::kInfo)
#define SITAM_WARN SITAM_LOG(::sitam::LogLevel::kWarn)
#define SITAM_ERROR SITAM_LOG(::sitam::LogLevel::kError)
