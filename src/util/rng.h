// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in sitam flows through Rng so that every table and figure in
// the paper reproduction is bit-for-bit repeatable from a single seed. The
// generator is xoshiro256** seeded via SplitMix64, which is far higher
// quality than std::minstd_rand and, unlike std::mt19937, has a trivially
// portable state and no implementation-defined seeding behaviour.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace sitam {

/// SplitMix64 step; used to expand a 64-bit seed into generator state.
/// Exposed because it is also handy as a cheap hash finalizer.
[[nodiscard]] constexpr std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives an independent seed for stream `index` of a master `seed` via
/// SplitMix64. Parallel restarts/chains each seed an Rng from their own
/// stream so results do not depend on execution order or thread count.
[[nodiscard]] constexpr std::uint64_t split_stream(std::uint64_t seed,
                                                   std::uint64_t index) noexcept {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return split_mix64(state);
}

/// xoshiro256** 1.0 with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions and std::shuffle if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = split_mix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Throws std::invalid_argument if
  /// lo > hi. Uses Lemire-style rejection to avoid modulo bias.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
    const std::uint64_t range = hi - lo;
    if (range == max()) return (*this)();
    return lo + bounded(range + 1);
  }

  /// Uniform integer in [0, n). Throws std::invalid_argument if n == 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("Rng::below: n == 0");
    return bounded(n);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double unit() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept { return unit() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// k distinct indices drawn uniformly from [0, n), in random order.
  /// Throws std::invalid_argument if k > n.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  // Unbiased bounded draw (n >= 1).
  [[nodiscard]] std::uint64_t bounded(std::uint64_t n) noexcept {
    // Rejection sampling on the top of the range.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  std::uint64_t state_[4]{};
};

}  // namespace sitam
