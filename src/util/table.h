// Plain-text table rendering for the paper-style result tables.
//
// The bench binaries print rows in the same layout as Tables 2 and 3 of the
// paper; TextTable handles column sizing, alignment, separators and an
// optional CSV dump so results can be post-processed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sitam {

enum class Align : std::uint8_t { kLeft, kRight, kCenter };

class TextTable {
 public:
  /// Declares a column; all columns must be declared before rows are added.
  void add_column(std::string header, Align align = Align::kRight);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  void begin_row();

  void cell(std::string value);
  void cell(std::int64_t value);
  void cell(std::uint64_t value);
  /// Fixed-point formatting with `decimals` digits after the point.
  void cell(double value, int decimals = 2);

  /// Inserts a horizontal separator line after the current last row.
  void separator();

  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with unicode-free ASCII borders.
  [[nodiscard]] std::string str() const;

  /// Comma-separated dump (header + rows, separators skipped).
  [[nodiscard]] std::string csv() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  struct Column {
    std::string header;
    Align align;
  };
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };

  void append_cell(std::string value);

  std::vector<Column> columns_;
  std::vector<Row> rows_;
};

}  // namespace sitam
