#include "util/cli.h"

#include <stdexcept>

namespace sitam {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() == 2) {
      throw std::invalid_argument("unexpected argument: " + arg);
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" if the next token is not itself a flag, else boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& name,
                            std::string fallback) const {
  const auto v = get(name);
  return v ? *v : std::move(fallback);
}

std::int64_t CliArgs::get_or(const std::string& name,
                             std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return std::stoll(*v);
}

double CliArgs::get_or(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return std::stod(*v);
}

std::vector<std::int64_t> CliArgs::get_list_or(
    const std::string& name, std::vector<std::int64_t> fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos <= v->size()) {
    const auto comma = v->find(',', pos);
    const std::string tok =
        v->substr(pos, comma == std::string::npos ? std::string::npos
                                                  : comma - pos);
    if (!tok.empty()) out.push_back(std::stoll(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<std::string> CliArgs::get_strings_or(
    const std::string& name, std::vector<std::string> fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= v->size()) {
    const auto comma = v->find(',', pos);
    std::string tok =
        v->substr(pos, comma == std::string::npos ? std::string::npos
                                                  : comma - pos);
    if (!tok.empty()) out.push_back(std::move(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace sitam
