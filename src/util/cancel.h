// Cooperative cancellation for long-running optimization work.
//
// A CancelToken is a shared flag between the party that wants work stopped
// (a server's cancel request, a deadline watchdog, a test) and the worker
// running it. Workers never poll the flag implicitly: cancellation points
// are explicit check_cancel() calls placed at loop boundaries where the
// algorithm's state is consistent — between optimizer improvement
// iterations, between annealing moves, between workload groupings — so a
// cancelled run unwinds through an exception without leaving any shared
// cache or evaluator mid-update. Requesting cancellation is sticky and
// thread-safe; the token carries no other state, so it is excluded from
// request identity hashes (two requests differing only in their token are
// the same computation).
#pragma once

#include <atomic>
#include <stdexcept>

namespace sitam {

/// Thrown by a cancellation point that observed a cancelled token. Derives
/// from std::runtime_error so generic "reject this work item" handlers see
/// it, but callers that care (the job server) catch it by exact type to
/// report "cancelled" instead of "failed".
class Cancelled : public std::runtime_error {
 public:
  Cancelled() : std::runtime_error("operation cancelled") {}
};

/// Sticky thread-safe cancellation flag. Copying is disabled: share one
/// token by reference/pointer (or shared_ptr where lifetimes demand it) so
/// every observer sees the same flag.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; safe from any thread.
  void request() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Throws Cancelled if cancellation was requested.
  void check() const {
    if (requested()) throw Cancelled();
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Null-tolerant cancellation point: config structs carry a non-owning
/// `const CancelToken*` that defaults to nullptr (no cancellation), so
/// every call site reads as one line.
inline void check_cancel(const CancelToken* token) {
  if (token != nullptr) token->check();
}

}  // namespace sitam
