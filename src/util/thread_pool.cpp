#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"

namespace sitam {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) {
    throw std::invalid_argument("ThreadPool: threads must be >= 1");
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

int ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::enqueue(std::function<void()> wrapped) {
  QueuedTask task;
  task.run = std::move(wrapped);
  if (obs::active()) task.enqueued_ns = obs::trace_now_ns();
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  ready_.notify_one();
  SITAM_HISTOGRAM("util.thread_pool.queue_depth", depth);
}

void ThreadPool::worker_loop() {
  obs::set_current_thread_label("pool-worker");
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock,
                  [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (task.enqueued_ns >= 0) {
      SITAM_HISTOGRAM("util.thread_pool.task_wait_ns",
                      obs::trace_now_ns() - task.enqueued_ns);
    }
    SITAM_TRACE_SPAN("util.thread_pool.task");
    task.run();  // packaged_task captures any exception in its future
  }
}

}  // namespace sitam
