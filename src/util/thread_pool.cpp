#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace sitam {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) {
    throw std::invalid_argument("ThreadPool: threads must be >= 1");
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

int ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::enqueue(std::function<void()> wrapped) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(wrapped));
  }
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock,
                  [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception in its future
  }
}

}  // namespace sitam
