#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

#include "util/obs_hooks.h"

namespace sitam {

namespace {

/// Trampoline for ThreadPoolObsHooks::run_task (a plain function pointer
/// so the hook table needs no std::function machinery).
void run_queued(void* ctx) {
  (*static_cast<std::function<void()>*>(ctx))();
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) {
    throw std::invalid_argument("ThreadPool: threads must be >= 1");
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

int ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::enqueue(JobPriority priority, std::function<void()> wrapped) {
  const ThreadPoolObsHooks* hooks = thread_pool_obs_hooks();
  QueuedTask task;
  task.run = std::move(wrapped);
  if (hooks != nullptr && hooks->enqueue_stamp_ns != nullptr) {
    task.enqueued_ns = hooks->enqueue_stamp_ns();
  }
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queues_[static_cast<std::size_t>(priority)].push_back(std::move(task));
    for (const std::deque<QueuedTask>& queue : queues_) depth += queue.size();
  }
  ready_.notify_one();
  if (hooks != nullptr && hooks->queue_depth != nullptr) {
    hooks->queue_depth(static_cast<std::int64_t>(depth));
  }
}

std::deque<ThreadPool::QueuedTask>* ThreadPool::next_queue_locked() {
  for (std::deque<QueuedTask>& queue : queues_) {
    if (!queue.empty()) return &queue;
  }
  return nullptr;
}

void ThreadPool::worker_loop() {
  set_thread_role("pool-worker");
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] {
        return shutting_down_ || next_queue_locked() != nullptr;
      });
      std::deque<QueuedTask>* queue = next_queue_locked();
      if (queue == nullptr) return;  // shutting down and drained
      task = std::move(queue->front());
      queue->pop_front();
    }
    const ThreadPoolObsHooks* hooks = thread_pool_obs_hooks();
    if (hooks != nullptr) {
      if (task.enqueued_ns >= 0 && hooks->task_dequeued != nullptr) {
        hooks->task_dequeued(task.enqueued_ns);
      }
      if (hooks->run_task != nullptr) {
        hooks->run_task(&run_queued, &task.run);
        continue;
      }
    }
    task.run();  // packaged_task captures any exception in its future
  }
}

}  // namespace sitam
