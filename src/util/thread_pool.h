// Fixed-size worker thread pool with futures-based, prioritised task
// submission.
//
// The optimizer's restart loop and the annealing chains are embarrassingly
// parallel: every unit of work owns its Optimizer/TamEvaluator instance and
// only the final winner selection needs the results together. ThreadPool
// gives those callers a deterministic harness: submit() returns a
// std::future so results are collected in *submission* order regardless of
// which worker finishes first, and exceptions thrown inside a task surface
// at future::get() instead of terminating a worker. shutdown() (also run
// by the destructor) drains every queued task before joining, so no
// submitted work is silently dropped.
//
// Tasks carry a JobPriority: workers always drain higher-priority queues
// first, FIFO within a priority. The job server uses this to keep
// interactive requests ahead of bulk sweeps; the optimizer's restart fan
// simply submits at the default priority, which preserves the original
// strict-FIFO behaviour. Priorities only reorder *dispatch* — they never
// change any task's result, so the deterministic-results contract of the
// restart/chain harnesses is unaffected.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sitam {

/// Dispatch priority of a queued task. Lower enum value = drained first.
enum class JobPriority : std::uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

/// Number of distinct JobPriority levels (queue array size).
inline constexpr std::size_t kJobPriorityLevels = 3;

class ThreadPool {
 public:
  /// Starts `threads` workers. Throws std::invalid_argument for
  /// threads < 1.
  explicit ThreadPool(int threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers (see shutdown()).
  ~ThreadPool();

  [[nodiscard]] int size() const {
    return static_cast<int>(workers_.size());
  }

  /// std::thread::hardware_concurrency clamped to >= 1 (the standard
  /// allows it to report 0 when the count is unknowable).
  [[nodiscard]] static int hardware_threads();

  /// Stops accepting new tasks, runs everything already queued, then joins
  /// the workers. Idempotent; called by the destructor.
  void shutdown();

  /// Enqueues `task` at JobPriority::kNormal and returns a future for its
  /// result. A task that throws stores the exception in the future
  /// (rethrown by get()). Throws std::runtime_error after shutdown().
  template <typename F>
  auto submit(F task) -> std::future<std::invoke_result_t<F>> {
    return submit(JobPriority::kNormal, std::move(task));
  }

  /// Enqueues `task` at `priority`: workers drain kHigh before kNormal
  /// before kLow, FIFO within each level.
  template <typename F>
  auto submit(JobPriority priority, F task)
      -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    // shared_ptr because std::function requires copyable callables and
    // packaged_task is move-only.
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::move(task));
    std::future<Result> future = packaged->get_future();
    enqueue(priority, [packaged] { (*packaged)(); });
    return future;
  }

 private:
  /// Queued task plus its enqueue timestamp when a trace session was
  /// active (-1 otherwise), so workers can report wait latency to obs.
  struct QueuedTask {
    std::function<void()> run;
    std::int64_t enqueued_ns = -1;
  };

  void enqueue(JobPriority priority, std::function<void()> wrapped);
  void worker_loop();

  /// Highest-priority non-empty queue, or nullptr. Caller holds mutex_.
  [[nodiscard]] std::deque<QueuedTask>* next_queue_locked();

  std::vector<std::thread> workers_;
  // One FIFO per priority level, drained lowest index first.
  std::array<std::deque<QueuedTask>, kJobPriorityLevels>
      queues_;                  // guarded_by(mutex_)
  bool shutting_down_ = false;  // guarded_by(mutex_)
  std::mutex mutex_;
  std::condition_variable ready_;
};

}  // namespace sitam
