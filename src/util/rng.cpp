#include "util/rng.h"

#include <unordered_set>

namespace sitam {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // For dense draws a partial Fisher-Yates is cheaper; for sparse draws a
  // rejection set avoids materializing [0, n).
  if (k * 3 >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(below(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::unordered_set<std::size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    const auto v = static_cast<std::size_t>(below(n));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace sitam
