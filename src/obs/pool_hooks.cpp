#include "obs/pool_hooks.h"

#include <cstdint>

#include "obs/obs.h"
#include "util/obs_hooks.h"

namespace sitam::obs {

namespace {

std::int64_t hook_enqueue_stamp_ns() {
  return active() ? trace_now_ns() : std::int64_t{-1};
}

void hook_queue_depth(std::int64_t depth) {
  SITAM_HISTOGRAM("util.thread_pool.queue_depth", depth);
}

void hook_task_dequeued(std::int64_t enqueued_ns) {
  SITAM_HISTOGRAM("util.thread_pool.task_wait_ns",
                  trace_now_ns() - enqueued_ns);
}

void hook_run_task(void (*run)(void*), void* ctx) {
  SITAM_TRACE_SPAN("util.thread_pool.task");
  run(ctx);
}

// Static storage, as util/obs_hooks.h requires; const, so no SL012.
constexpr ThreadPoolObsHooks kHooks{
    &hook_enqueue_stamp_ns,
    &hook_queue_depth,
    &hook_task_dequeued,
    &hook_run_task,
};

}  // namespace

void install_thread_pool_hooks() { install_thread_pool_obs_hooks(&kHooks); }

}  // namespace sitam::obs
