#include "obs/obs.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <mutex>
#include <utility>

#include "obs/pool_hooks.h"
#include "util/check.h"
#include "util/obs_hooks.h"

namespace sitam::obs {

namespace detail {
std::atomic<std::uint64_t> g_epoch{0};
}  // namespace detail

namespace {

/// Per-thread event buffers. Only the owning thread writes; other threads
/// read only under the global mutex after the owner has quiesced (session
/// stop with no work in flight, or the owner's own exit).
struct ThreadState {
  std::uint64_t epoch = 0;  ///< Session epoch the buffers belong to.
  int tid = 0;
  const char* label = nullptr;  ///< Role label; survives across sessions.
  std::vector<std::int64_t> counters;      ///< Dense by metric id.
  std::vector<HistogramData> histograms;   ///< Dense by metric id.
  std::vector<SpanEvent> spans;
  std::size_t span_capacity = 0;
  std::int64_t dropped_spans = 0;

  ~ThreadState();
};

struct Registry {
  std::map<std::string, int> ids;
  std::vector<std::string> names;
};

struct SessionState {
  // Merged data from retired (exited) threads, and at stop() from live
  // ones. `counters`/`histograms` intentionally share names with
  // ThreadState's lock-free per-thread buffers, so they stay without a
  // guarded_by annotation (every access here is under mutex() anyway).
  std::vector<std::int64_t> counters;
  std::vector<HistogramData> histograms;
  bool active = false;             // guarded_by(mutex())
  TraceConfig config;              // guarded_by(mutex())
  int next_tid = 0;                // guarded_by(mutex())
  std::vector<ThreadState*> live;  // guarded_by(mutex())
  std::vector<TrackDump> tracks;   // guarded_by(mutex())
};

// Function-local statics: constructed on first use, so the subsystem works
// from static initializers, and destroyed after the main thread's
// thread-local ThreadState.
std::mutex& mutex() {
  static std::mutex m;
  return m;
}

Registry& registry() {
  static Registry r;
  return r;
}

SessionState& session() {
  static SessionState s;
  return s;
}

ThreadState& state() {
  thread_local ThreadState s;
  return s;
}

void merge_into_session_locked(SessionState& ses, ThreadState& s) {
  TrackDump track;
  track.tid = s.tid;
  track.label =
      s.label != nullptr ? s.label : "thread-" + std::to_string(s.tid);
  track.spans = std::move(s.spans);
  track.dropped_spans = s.dropped_spans;
  ses.tracks.push_back(std::move(track));
  if (ses.counters.size() < s.counters.size()) {
    ses.counters.resize(s.counters.size(), 0);
  }
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    ses.counters[i] += s.counters[i];
  }
  if (ses.histograms.size() < s.histograms.size()) {
    ses.histograms.resize(s.histograms.size());
  }
  for (std::size_t i = 0; i < s.histograms.size(); ++i) {
    ses.histograms[i].merge(s.histograms[i]);
  }
}

/// Binds `s` to the session with epoch `epoch`: assigns a track id and
/// resets the buffers. Returns false when that session is already gone.
bool attach(ThreadState& s, std::uint64_t epoch) noexcept {
  const std::lock_guard<std::mutex> lock(mutex());
  SessionState& ses = session();
  if (!ses.active ||
      detail::g_epoch.load(std::memory_order_relaxed) != epoch) {
    return false;
  }
  s.epoch = epoch;
  s.tid = ++ses.next_tid;
  // util threads can't call set_current_thread_label (layering: util sits
  // below obs), so they tag themselves via sitam::set_thread_role.
  if (s.label == nullptr) s.label = thread_role();
  s.counters.clear();
  s.histograms.clear();
  s.spans.clear();
  s.span_capacity = ses.config.span_capacity_per_thread;
  s.spans.reserve(s.span_capacity);
  s.dropped_spans = 0;
  ses.live.push_back(&s);
  return true;
}

ThreadState::~ThreadState() {
  const std::lock_guard<std::mutex> lock(mutex());
  SessionState& ses = session();
  if (!ses.active ||
      epoch != detail::g_epoch.load(std::memory_order_relaxed)) {
    return;
  }
  merge_into_session_locked(ses, *this);
  std::erase(ses.live, this);
}

}  // namespace

void HistogramData::record(std::int64_t value) noexcept {
  ++count;
  sum += value;
  min = std::min(min, value);
  max = std::max(max, value);
  std::size_t bucket = 0;
  if (value > 0) {
    const int width =
        static_cast<int>(std::bit_width(static_cast<std::uint64_t>(value)));
    bucket = static_cast<std::size_t>(std::min(width, 63));
  }
  ++buckets[bucket];
}

double HistogramData::quantile(double q) const noexcept {
  if (count <= 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min);
  if (q >= 1.0) return static_cast<double>(max);
  const double target = q * static_cast<double>(count - 1);
  std::int64_t before = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::int64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    const double last = static_cast<double>(before + in_bucket - 1);
    if (target <= last) {
      // The value range bucket b covers; bucket 0 holds values <= 0.
      const double lo =
          b == 0 ? std::min(0.0, static_cast<double>(min))
                 : std::exp2(static_cast<double>(b) - 1.0);
      const double hi = b == 0 ? 0.0 : std::exp2(static_cast<double>(b));
      const double first = static_cast<double>(before);
      const double f =
          in_bucket == 1
              ? 0.5
              : (target - first) / static_cast<double>(in_bucket - 1);
      const double value = lo + f * (hi - lo);
      return std::max(static_cast<double>(min),
                      std::min(static_cast<double>(max), value));
    }
    before += in_bucket;
  }
  return static_cast<double>(max);
}

void HistogramData::merge(const HistogramData& other) noexcept {
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

std::int64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

namespace detail {

int intern_metric(const char* name) {
  const std::lock_guard<std::mutex> lock(mutex());
  Registry& reg = registry();
  const auto [it, inserted] =
      reg.ids.emplace(name, static_cast<int>(reg.names.size()));
  if (inserted) reg.names.emplace_back(name);
  return it->second;
}

void counter_add(int id, std::int64_t delta) noexcept {
  const std::uint64_t e = g_epoch.load(std::memory_order_relaxed);
  if ((e & 1U) == 0U) return;
  ThreadState& s = state();
  if (s.epoch != e && !attach(s, e)) return;
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= s.counters.size()) s.counters.resize(idx + 1, 0);
  s.counters[idx] += delta;
}

void histogram_record(int id, std::int64_t value) noexcept {
  const std::uint64_t e = g_epoch.load(std::memory_order_relaxed);
  if ((e & 1U) == 0U) return;
  ThreadState& s = state();
  if (s.epoch != e && !attach(s, e)) return;
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= s.histograms.size()) s.histograms.resize(idx + 1);
  s.histograms[idx].record(value);
}

void span_close(const char* name, std::int64_t begin_ns, std::int64_t arg,
                std::uint64_t epoch) noexcept {
  if (g_epoch.load(std::memory_order_relaxed) != epoch) return;
  const std::int64_t end_ns = trace_now_ns();
  ThreadState& s = state();
  if (s.epoch != epoch && !attach(s, epoch)) return;
  if (s.spans.size() < s.span_capacity) {
    s.spans.push_back(SpanEvent{name, begin_ns, end_ns, arg});
  } else {
    ++s.dropped_spans;
  }
}

}  // namespace detail

void set_current_thread_label(const char* label) noexcept {
  state().label = label;
}

TraceSession::TraceSession(TraceConfig config) {
  // Referencing the install here (not from a global ctor in an otherwise
  // unreferenced TU) guarantees the hooks land whenever tracing is used,
  // even from a static library.
  install_thread_pool_hooks();
  const std::lock_guard<std::mutex> lock(mutex());
  SessionState& ses = session();
  SITAM_CHECK_MSG(!ses.active, "only one TraceSession may be active");
  ses = SessionState{};
  ses.active = true;
  ses.config = config;
  detail::g_epoch.fetch_add(1, std::memory_order_relaxed);  // even -> odd
}

TraceSession::~TraceSession() {
  if (!stopped_) static_cast<void>(stop());
}

TraceDump TraceSession::stop() {
  SITAM_CHECK_MSG(!stopped_, "TraceSession::stop called twice");
  stopped_ = true;

  const std::lock_guard<std::mutex> lock(mutex());
  SessionState& ses = session();
  detail::g_epoch.fetch_add(1, std::memory_order_relaxed);  // odd -> even
  for (ThreadState* s : ses.live) merge_into_session_locked(ses, *s);
  ses.live.clear();
  ses.active = false;

  TraceDump dump;
  dump.tracks = std::move(ses.tracks);
  std::sort(dump.tracks.begin(), dump.tracks.end(),
            [](const TrackDump& a, const TrackDump& b) {
              return a.tid < b.tid;
            });
  for (TrackDump& track : dump.tracks) {
    // Chrome's viewer nests slices correctly when a track's events are
    // ordered by begin time with enclosing (longer) spans first.
    std::stable_sort(track.spans.begin(), track.spans.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       if (a.begin_ns != b.begin_ns) {
                         return a.begin_ns < b.begin_ns;
                       }
                       return a.end_ns > b.end_ns;
                     });
    dump.metrics.dropped_spans += track.dropped_spans;
  }
  const Registry& reg = registry();
  for (std::size_t i = 0; i < ses.counters.size(); ++i) {
    if (ses.counters[i] != 0) {
      dump.metrics.counters[reg.names[i]] = ses.counters[i];
    }
  }
  for (std::size_t i = 0; i < ses.histograms.size(); ++i) {
    if (ses.histograms[i].count != 0) {
      dump.metrics.histograms[reg.names[i]] = ses.histograms[i];
    }
  }
  ses.counters.clear();
  ses.histograms.clear();
  return dump;
}

}  // namespace sitam::obs
