// Structural validator for exported Chrome trace-event JSON: the
// bench_smoke_trace gate uses it to prove a trace will load in Perfetto /
// chrome://tracing before anyone opens it there. Checks: the document
// parses, "traceEvents" is an array of well-formed events (string ph/name,
// integer pid/tid, numeric non-negative ts/dur on "X" events), and ts is
// monotone non-decreasing within every (pid, tid) track.
#pragma once

#include <string>
#include <vector>

namespace sitam::obs {

struct TraceVerifyResult {
  bool ok = false;
  int events = 0;        ///< Total traceEvents seen.
  int span_events = 0;   ///< "X" events among them.
  int tracks = 0;        ///< Distinct (pid, tid) pairs with span events.
  std::vector<std::string> problems;  ///< Empty iff ok.

  /// All problems joined with newlines ("" when ok).
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] TraceVerifyResult verify_chrome_trace(const std::string& text);
[[nodiscard]] TraceVerifyResult verify_chrome_trace_file(
    const std::string& path);

}  // namespace sitam::obs
