#include "obs/manifest.h"

#include "util/json.h"
#include "util/thread_pool.h"

// Baked in by src/obs/CMakeLists.txt; the fallbacks keep non-CMake builds
// (and IDE indexers) compiling.
#ifndef SITAM_GIT_DESCRIBE
#define SITAM_GIT_DESCRIBE "unknown"
#endif
#ifndef SITAM_BUILD_TYPE
#define SITAM_BUILD_TYPE "unknown"
#endif
#ifndef SITAM_SANITIZE_NAME
#define SITAM_SANITIZE_NAME ""
#endif

namespace sitam::obs {

RunManifest RunManifest::collect(std::string program_name) {
  // Keep only the basename: manifests from ./build/bench/foo and an
  // installed foo must compare equal.
  const std::size_t slash = program_name.find_last_of("/\\");
  if (slash != std::string::npos) program_name.erase(0, slash + 1);
  RunManifest manifest;
  manifest.program = std::move(program_name);
  manifest.build_type = SITAM_BUILD_TYPE;
  manifest.sanitizer = SITAM_SANITIZE_NAME;
  manifest.git_describe = SITAM_GIT_DESCRIBE;
  manifest.hardware_threads = ThreadPool::hardware_threads();
  return manifest;
}

void RunManifest::write(JsonWriter& json) const {
  json.begin_object();
  json.kv("program", program);
  if (!scenario.empty()) json.kv("scenario", scenario);
  json.kv("seed", static_cast<std::int64_t>(seed));
  json.kv("threads", threads);
  json.kv("build_type", build_type);
  if (!sanitizer.empty()) json.kv("sanitizer", sanitizer);
  json.kv("git_describe", git_describe);
  json.kv("hardware_threads", hardware_threads);
  if (!extra.empty()) {
    json.key("config").begin_object();
    for (const auto& [key, value] : extra) json.kv(key, value);
    json.end_object();
  }
  json.end_object();
}

}  // namespace sitam::obs
