// Exporters for a TraceDump: Chrome trace-event JSON (loadable in Perfetto
// / chrome://tracing, one track per thread) and a flat metrics JSON. Both
// embed the RunManifest under a "manifest" key. See docs/OBSERVABILITY.md.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "obs/manifest.h"
#include "obs/obs.h"

namespace sitam {
class JsonWriter;
}  // namespace sitam

namespace sitam::obs {

/// Chrome trace-event JSON object format: {"traceEvents": [...], ...}.
/// Spans become "X" complete events (ts/dur in microseconds) on pid 1 with
/// one tid per recorded thread; track labels are emitted as "thread_name"
/// metadata events.
void write_chrome_trace(JsonWriter& json, const TraceDump& dump,
                        const RunManifest& manifest);
[[nodiscard]] std::string chrome_trace_json(const TraceDump& dump,
                                            const RunManifest& manifest);

/// Flat metrics document: manifest, counters (sorted by name), histograms
/// (count/sum/min/max/mean + non-empty power-of-two buckets).
void write_metrics_json(JsonWriter& json, const TraceDump& dump,
                        const RunManifest& manifest);
[[nodiscard]] std::string metrics_json(const TraceDump& dump,
                                       const RunManifest& manifest);

/// Overwrites `path` with `text`; returns false (after logging a warning)
/// when the file cannot be written.
bool write_text_file(const std::string& path, std::string_view text);

/// RAII wiring for the standard `--trace-out=` / `--metrics-out=` flags:
/// starts a TraceSession iff at least one output path is non-empty, and on
/// finish() (or destruction) stops the session and writes the requested
/// files with `manifest` embedded. With both paths empty this is inert —
/// no session starts, so instrumentation stays on its no-op fast path.
class TraceEmitter {
 public:
  TraceEmitter(std::string trace_path, std::string metrics_path,
               RunManifest manifest);
  TraceEmitter(const TraceEmitter&) = delete;
  TraceEmitter& operator=(const TraceEmitter&) = delete;
  ~TraceEmitter();

  [[nodiscard]] bool active() const { return session_.has_value(); }
  [[nodiscard]] RunManifest& manifest() { return manifest_; }

  /// Stops the session and writes the requested files. Idempotent;
  /// returns false if any file could not be written.
  bool finish();

  /// The harvested dump; meaningful after finish().
  [[nodiscard]] const TraceDump& dump() const { return dump_; }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  RunManifest manifest_;
  std::optional<TraceSession> session_;
  TraceDump dump_;
  bool finished_ = false;
  bool ok_ = true;
};

}  // namespace sitam::obs
