// The single clock source for the tracing subsystem.
//
// Every obs timestamp is "nanoseconds since the process trace epoch" (the
// first call to trace_now_ns in the process), derived from the repo's one
// blessed monotonic clock, sitam::Stopwatch. Nothing else in src/obs may
// read a clock: sitam-lint rule SL011 bans direct <chrono> use in src/obs
// outside this shim, and SL002 continues to ban wall-clock reads
// everywhere, so results can never depend on time observed here.
#pragma once

#include <cstdint>

#include "util/stopwatch.h"

namespace sitam::obs {

/// Nanoseconds since the process trace epoch. Monotonic non-decreasing
/// (Stopwatch wraps std::chrono::steady_clock, and double→ns conversion
/// preserves ordering; double keeps full ns precision for ~100 days).
[[nodiscard]] inline std::int64_t trace_now_ns() noexcept {
  static const Stopwatch epoch;  // armed on first use, process-wide
  return static_cast<std::int64_t>(epoch.seconds() * 1e9);
}

}  // namespace sitam::obs
