// Low-overhead, thread-safe tracing & metrics.
//
// One TraceSession may be active at a time. While it is, the SITAM_* macros
// record scoped spans, counters, and log2-bucket histograms into per-thread
// buffers: a fixed-capacity span buffer (overflow counts drops, never
// reallocates) and dense per-metric-id arrays. The hot path touches only
// thread-local state — one relaxed atomic load to test for an active
// session, no locks, no allocation after a thread's first event — so
// instrumented code runs contention-free and the macros cost one predicted
// branch when no session is active. A mutex is taken only on the cold
// paths: interning a metric name (once per call site per process), a
// thread's first event in a session, thread exit, and session stop, which
// drains every thread's buffers into a TraceDump.
//
// Instrumentation must never affect results: the macros record, they do not
// steer. With no session active the pipeline's output is bit-identical to
// an uninstrumented build for any thread count.
//
// Sessions must be stopped from a point where no instrumented work is in
// flight (after joining workers / collecting futures) — the same discipline
// the deterministic pipeline already follows. Timestamps come exclusively
// from obs/clock.h (see SL011).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.h"

namespace sitam::obs {

/// Sentinel for "span carries no integer argument".
inline constexpr std::int64_t kNoSpanArg =
    std::numeric_limits<std::int64_t>::min();

/// One closed span on one thread's track.
struct SpanEvent {
  const char* name = nullptr;  ///< String literal from the call site.
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::int64_t arg = kNoSpanArg;
};

/// Count / sum / min / max plus power-of-two buckets: bucket 0 holds
/// values <= 0, bucket b >= 1 holds values with bit_width b, i.e.
/// 2^(b-1) <= v < 2^b (values needing more than 63 bits clamp to 63).
struct HistogramData {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
  std::array<std::int64_t, 64> buckets{};

  void record(std::int64_t value) noexcept;
  void merge(const HistogramData& other) noexcept;
  /// Quantile estimate for q in [0, 1]: the fractional rank q*(count-1)
  /// is located in its bucket and interpolated linearly across the
  /// bucket's value range, then clamped to [min, max] (so single-sample
  /// and single-bucket-edge cases are exact). Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// All spans recorded by one thread during a session.
struct TrackDump {
  int tid = 0;         ///< 1-based, in order of first event in the session.
  std::string label;   ///< Role label ("main", "pool-worker", ...).
  std::vector<SpanEvent> spans;  ///< Sorted by (begin_ns, longer-first).
  std::int64_t dropped_spans = 0;
};

/// Counters and histograms aggregated across all threads, keyed by the
/// interned metric name (sorted — safe to iterate into reports).
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, HistogramData> histograms;
  std::int64_t dropped_spans = 0;  ///< Total across threads.

  /// Counter value, or 0 when the name was never bumped.
  [[nodiscard]] std::int64_t counter(std::string_view name) const;
};

/// Everything one session recorded.
struct TraceDump {
  std::vector<TrackDump> tracks;  ///< Sorted by tid.
  MetricsSnapshot metrics;
};

struct TraceConfig {
  /// Max spans kept per thread; later spans are counted as dropped.
  std::size_t span_capacity_per_thread = std::size_t{1} << 15;
};

namespace detail {

/// Session epoch: odd while a session is active; a session start and its
/// stop each increment it. Relaxed loads gate the hot path.
extern std::atomic<std::uint64_t> g_epoch;

[[nodiscard]] int intern_metric(const char* name);
void counter_add(int id, std::int64_t delta) noexcept;
void histogram_record(int id, std::int64_t value) noexcept;
void span_close(const char* name, std::int64_t begin_ns, std::int64_t arg,
                std::uint64_t epoch) noexcept;

}  // namespace detail

/// True while a TraceSession is active (the macro fast-path gate).
[[nodiscard]] inline bool active() noexcept {
  return (detail::g_epoch.load(std::memory_order_relaxed) & 1U) != 0U;
}

/// Records events for the current thread while alive; stop() (or the
/// destructor) deactivates recording and drains every thread's buffers.
class TraceSession {
 public:
  explicit TraceSession(TraceConfig config = {});
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
  ~TraceSession();

  /// Deactivates the session and collects everything recorded. Call with
  /// no instrumented work in flight. Throws if already stopped.
  TraceDump stop();

  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

 private:
  bool stopped_ = false;
};

/// Labels the calling thread's track in subsequent dumps ("pool-worker",
/// ...). `label` must be a string literal or otherwise outlive the
/// process. Cheap; callable with or without an active session.
void set_current_thread_label(const char* label) noexcept;

/// RAII span. Opens (reads the clock) only when a session is active at
/// construction; closes into the same session's buffers, or is dropped if
/// that session ended mid-span.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name,
                      std::int64_t arg = kNoSpanArg) noexcept {
    const std::uint64_t e =
        detail::g_epoch.load(std::memory_order_relaxed);
    if ((e & 1U) != 0U) {
      name_ = name;
      arg_ = arg;
      epoch_ = e;
      begin_ns_ = trace_now_ns();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (name_ != nullptr) {
      detail::span_close(name_, begin_ns_, arg_, epoch_);
    }
  }

 private:
  const char* name_ = nullptr;  ///< Null when no session was active.
  std::int64_t begin_ns_ = 0;
  std::int64_t arg_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace sitam::obs

#define SITAM_OBS_CONCAT_INNER(a, b) a##b
#define SITAM_OBS_CONCAT(a, b) SITAM_OBS_CONCAT_INNER(a, b)

/// Scoped span covering the rest of the enclosing block. `name` must be a
/// string literal ("subsystem.noun.verb", see docs/OBSERVABILITY.md).
#define SITAM_TRACE_SPAN(name) \
  ::sitam::obs::ScopedSpan SITAM_OBS_CONCAT(sitam_obs_span_, __LINE__)(name)

/// Span carrying one integer argument (restart index, width, ...).
#define SITAM_TRACE_SPAN_ARG(name, arg_value)                    \
  ::sitam::obs::ScopedSpan SITAM_OBS_CONCAT(sitam_obs_span_,     \
                                            __LINE__)((name),    \
                                                      (arg_value))

/// Adds `delta` to the named counter. The name is interned once per call
/// site (function-local static), so the steady-state cost is one branch,
/// one relaxed load, and one thread-local array add.
#define SITAM_COUNTER(name, delta)                                        \
  do {                                                                    \
    if (::sitam::obs::active()) {                                         \
      static const int sitam_obs_id_ =                                    \
          ::sitam::obs::detail::intern_metric(name);                      \
      ::sitam::obs::detail::counter_add(                                  \
          sitam_obs_id_, static_cast<std::int64_t>(delta));               \
    }                                                                     \
  } while (false)

/// Records `value` into the named log2-bucket histogram.
#define SITAM_HISTOGRAM(name, value)                                      \
  do {                                                                    \
    if (::sitam::obs::active()) {                                         \
      static const int sitam_obs_id_ =                                    \
          ::sitam::obs::detail::intern_metric(name);                      \
      ::sitam::obs::detail::histogram_record(                             \
          sitam_obs_id_, static_cast<std::int64_t>(value));               \
    }                                                                     \
  } while (false)
