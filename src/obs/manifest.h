// Unified run manifest: the reproducibility header every trace, metrics,
// and BENCH_*.json file embeds under a common "manifest" key — which
// binary, which config/seed/thread count, which build. Two runs whose
// manifests match are expected to produce identical results (the
// pipeline is deterministic for any thread count).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sitam {
class JsonWriter;
}  // namespace sitam

namespace sitam::obs {

struct RunManifest {
  std::string program;    ///< Binary or study name, e.g. "table2_p34392".
  std::string scenario;   ///< SOC / workload identifier, "" when n/a.
  std::uint64_t seed = 0;
  int threads = 0;        ///< Worker threads requested (0 = unset).
  std::string build_type;    ///< CMAKE_BUILD_TYPE baked at compile time.
  std::string sanitizer;     ///< SITAM_SANITIZE value, "" for plain builds.
  std::string git_describe;  ///< `git describe --always --dirty` at configure.
  int hardware_threads = 0;
  /// Extra config in insertion order (pattern counts, widths, flags, ...).
  std::vector<std::pair<std::string, std::string>> extra;

  /// Fills program plus the build/host fields; the caller sets the rest.
  [[nodiscard]] static RunManifest collect(std::string program_name);

  void add_extra(std::string key, std::string value) {
    extra.emplace_back(std::move(key), std::move(value));
  }

  /// Writes one JSON object (begin_object..end_object) into `json`.
  void write(JsonWriter& json) const;
};

}  // namespace sitam::obs
