#include "obs/trace_verify.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace sitam::obs {

namespace {

// -------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser. The repo's util/json is a
// streaming writer only; this reader exists solely so the trace gate can
// check its own output, so it favours smallness over speed and reports the
// first syntax error via ParseError.

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Value> items;
  std::map<std::string, Value> fields;

  [[nodiscard]] const Value* field(const std::string& name) const {
    const auto it = fields.find(name);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << what << " at offset " << pos_;
    throw ParseError(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool try_consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        fail(std::string("bad literal (expected ") + literal + ")");
      }
      ++pos_;
    }
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.text = parse_string();
        return v;
      }
      case 't': {
        expect_literal("true");
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        expect_literal("false");
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        expect_literal("null");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    if (try_consume('}')) return v;
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      v.fields.emplace(std::move(key), parse_value());
      if (try_consume('}')) return v;
      expect(',');
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    if (try_consume(']')) return v;
    for (;;) {
      v.items.push_back(parse_value());
      if (try_consume(']')) return v;
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            // Structural checks don't need the decoded code point.
            pos_ += 4;
            out.push_back('?');
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
  }

  Value parse_number() {
    const std::size_t begin = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == begin) fail("expected a value");
    const std::string token = text_.substr(begin, pos_ - begin);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// -------------------------------------------------------------------------

constexpr std::size_t kMaxProblems = 20;

void add_problem(TraceVerifyResult& result, std::string problem) {
  if (result.problems.size() < kMaxProblems) {
    result.problems.push_back(std::move(problem));
  }
}

bool integral_number(const Value* v) {
  return v != nullptr && v->kind == Value::Kind::kNumber &&
         std::floor(v->number) == v->number;
}

void verify_event(const Value& event, int index, TraceVerifyResult& result,
                  std::map<std::pair<std::int64_t, std::int64_t>, double>&
                      last_ts_by_track) {
  const auto tag = [index](const char* what) {
    std::ostringstream os;
    os << "traceEvents[" << index << "]: " << what;
    return os.str();
  };
  if (event.kind != Value::Kind::kObject) {
    add_problem(result, tag("not an object"));
    return;
  }
  const Value* ph = event.field("ph");
  if (ph == nullptr || ph->kind != Value::Kind::kString ||
      ph->text.empty()) {
    add_problem(result, tag("missing string \"ph\""));
    return;
  }
  const Value* name = event.field("name");
  if (name == nullptr || name->kind != Value::Kind::kString ||
      name->text.empty()) {
    add_problem(result, tag("missing string \"name\""));
  }
  const Value* pid = event.field("pid");
  const Value* tid = event.field("tid");
  if (!integral_number(pid) || !integral_number(tid)) {
    add_problem(result, tag("pid/tid must be integers"));
    return;
  }
  if (ph->text != "X") return;  // Metadata events carry no timestamps.

  ++result.span_events;
  const Value* ts = event.field("ts");
  const Value* dur = event.field("dur");
  if (ts == nullptr || ts->kind != Value::Kind::kNumber || ts->number < 0) {
    add_problem(result, tag("\"X\" event needs numeric ts >= 0"));
    return;
  }
  if (dur == nullptr || dur->kind != Value::Kind::kNumber ||
      dur->number < 0) {
    add_problem(result, tag("\"X\" event needs numeric dur >= 0"));
  }
  const std::pair<std::int64_t, std::int64_t> track{
      static_cast<std::int64_t>(pid->number),
      static_cast<std::int64_t>(tid->number)};
  const auto [it, inserted] = last_ts_by_track.emplace(track, ts->number);
  if (inserted) {
    ++result.tracks;
  } else if (ts->number < it->second) {
    add_problem(result, tag("ts decreases within its (pid, tid) track"));
  } else {
    it->second = ts->number;
  }
}

}  // namespace

std::string TraceVerifyResult::summary() const {
  std::string out = ok ? "trace ok: " : "trace invalid: ";
  out += std::to_string(events) + " events (" + std::to_string(span_events) +
         " spans) on " + std::to_string(tracks) + " tracks";
  if (!problems.empty()) {
    out += ", " + std::to_string(problems.size()) + " problem(s):";
    for (const std::string& problem : problems) {
      out += "\n  " + problem;
    }
  }
  return out;
}

TraceVerifyResult verify_chrome_trace(const std::string& text) {
  TraceVerifyResult result;
  Value document;
  try {
    document = Parser(text).parse_document();
  } catch (const ParseError& error) {
    add_problem(result, std::string("JSON parse error: ") + error.what());
    return result;
  }
  if (document.kind != Value::Kind::kObject) {
    add_problem(result, "top-level value is not an object");
    return result;
  }
  const Value* events = document.field("traceEvents");
  if (events == nullptr || events->kind != Value::Kind::kArray) {
    add_problem(result, "missing \"traceEvents\" array");
    return result;
  }
  std::map<std::pair<std::int64_t, std::int64_t>, double> last_ts_by_track;
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    ++result.events;
    verify_event(events->items[i], static_cast<int>(i), result,
                 last_ts_by_track);
  }
  result.ok = result.problems.empty();
  return result;
}

TraceVerifyResult verify_chrome_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    TraceVerifyResult result;
    result.problems.push_back("cannot open " + path);
    return result;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return verify_chrome_trace(text.str());
}

}  // namespace sitam::obs
