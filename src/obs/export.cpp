#include "obs/export.h"

#include <cstdint>
#include <fstream>

#include "obs/manifest.h"
#include "obs/obs.h"
#include "util/json.h"
#include "util/log.h"

namespace sitam::obs {

namespace {

constexpr double kNsPerUs = 1e3;

void write_event_header(JsonWriter& json, const char* ph, int tid) {
  json.kv("ph", ph);
  json.kv("pid", 1);
  json.kv("tid", tid);
}

}  // namespace

void write_chrome_trace(JsonWriter& json, const TraceDump& dump,
                        const RunManifest& manifest) {
  json.begin_object();
  json.kv("displayTimeUnit", "ms");
  json.key("manifest");
  manifest.write(json);
  json.key("traceEvents").begin_array();

  json.begin_object();
  write_event_header(json, "M", 0);
  json.kv("name", "process_name");
  json.key("args").begin_object();
  json.kv("name", "sitam");
  json.end_object();
  json.end_object();

  for (const TrackDump& track : dump.tracks) {
    json.begin_object();
    write_event_header(json, "M", track.tid);
    json.kv("name", "thread_name");
    json.key("args").begin_object();
    json.kv("name", track.label);
    json.end_object();
    json.end_object();
  }

  for (const TrackDump& track : dump.tracks) {
    for (const SpanEvent& span : track.spans) {
      json.begin_object();
      write_event_header(json, "X", track.tid);
      json.kv("name", span.name);
      json.kv("cat", "sitam");
      json.kv("ts", static_cast<double>(span.begin_ns) / kNsPerUs);
      json.kv("dur",
              static_cast<double>(span.end_ns - span.begin_ns) / kNsPerUs);
      if (span.arg != kNoSpanArg) {
        json.key("args").begin_object();
        json.kv("arg", span.arg);
        json.end_object();
      }
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
}

std::string chrome_trace_json(const TraceDump& dump,
                              const RunManifest& manifest) {
  JsonWriter json;
  write_chrome_trace(json, dump, manifest);
  return json.str();
}

void write_metrics_json(JsonWriter& json, const TraceDump& dump,
                        const RunManifest& manifest) {
  json.begin_object();
  json.key("manifest");
  manifest.write(json);

  json.key("counters").begin_object();
  for (const auto& [name, value] : dump.metrics.counters) {
    json.kv(name, value);
  }
  json.end_object();

  json.key("histograms").begin_object();
  for (const auto& [name, histogram] : dump.metrics.histograms) {
    json.key(name).begin_object();
    json.kv("count", histogram.count);
    json.kv("sum", histogram.sum);
    json.kv("min", histogram.min);
    json.kv("max", histogram.max);
    json.kv("mean", histogram.mean());
    json.kv("p50", histogram.quantile(0.50));
    json.kv("p95", histogram.quantile(0.95));
    json.kv("p99", histogram.quantile(0.99));
    // Bucket b covers values with bit width b: [2^(b-1), 2^b).
    json.key("buckets").begin_array();
    for (std::size_t b = 0; b < histogram.buckets.size(); ++b) {
      if (histogram.buckets[b] == 0) continue;
      json.begin_object();
      json.kv("pow2", static_cast<std::int64_t>(b));
      json.kv("count", histogram.buckets[b]);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();

  json.kv("dropped_spans", dump.metrics.dropped_spans);
  json.end_object();
}

std::string metrics_json(const TraceDump& dump, const RunManifest& manifest) {
  JsonWriter json;
  write_metrics_json(json, dump, manifest);
  return json.str();
}

bool write_text_file(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) {
    SITAM_WARN << "cannot write " << path;
    return false;
  }
  return true;
}

TraceEmitter::TraceEmitter(std::string trace_path, std::string metrics_path,
                           RunManifest manifest)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)),
      manifest_(std::move(manifest)) {
  if (!trace_path_.empty() || !metrics_path_.empty()) {
    session_.emplace();
  }
}

TraceEmitter::~TraceEmitter() { finish(); }

bool TraceEmitter::finish() {
  if (finished_) return ok_;
  finished_ = true;
  if (!session_) return ok_;
  dump_ = session_->stop();
  if (!trace_path_.empty()) {
    ok_ = write_text_file(trace_path_, chrome_trace_json(dump_, manifest_)) &&
          ok_;
    SITAM_INFO << "trace written to " << trace_path_ << " ("
               << dump_.tracks.size() << " tracks)";
  }
  if (!metrics_path_.empty()) {
    ok_ = write_text_file(metrics_path_, metrics_json(dump_, manifest_)) &&
          ok_;
    SITAM_INFO << "metrics written to " << metrics_path_ << " ("
               << dump_.metrics.counters.size() << " counters)";
  }
  return ok_;
}

}  // namespace sitam::obs
