// obs-side implementation of the util::ThreadPool observability hooks
// (see util/obs_hooks.h for why the dependency is inverted).
#pragma once

namespace sitam::obs {

/// Installs the ThreadPool hook table (idempotent, thread-safe).
/// TraceSession's constructor calls this, so any pool that runs under a
/// trace session reports queue depth, wait latency, and task spans.
void install_thread_pool_hooks();

}  // namespace sitam::obs
