// Two-dimensional SI test-set compaction: grouping (horizontal) on top of
// pattern-count compaction (vertical), per §3 of the paper.
//
// Cores are partitioned into `parts` groups by min-cut hypergraph
// partitioning (vertex = core, weight = WOC count; hyperedge = distinct
// care-core set, weight = pattern multiplicity). Patterns whose care cores
// all fall in one group are applied with a shortened length (only that
// group's WOCs are loaded; all other core boundaries are bypassed); the rest
// form a *remainder* group that still loads every core's WOCs. Each group is
// then compacted independently with the greedy clique-cover heuristic.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hypergraph/partition.h"
#include "interconnect/terminal_space.h"
#include "pattern/compaction.h"
#include "pattern/pattern.h"

namespace sitam {

/// One schedulable SI test (a group of compacted patterns).
struct SiTestGroup {
  std::string label;          ///< "g1", "g2", ..., "rem".
  std::vector<int> cores;     ///< Sorted 0-based core indices whose WOCs are
                              ///< loaded by every pattern of this group.
  std::int64_t patterns = 0;  ///< Compacted pattern count.
  std::int64_t raw_patterns = 0;  ///< Pattern count before compaction.
  bool is_remainder = false;
  /// Peak test power while this group applies patterns (arbitrary units;
  /// 0 = not modelled). See assign_si_power().
  std::int64_t power = 0;
  /// True iff any pattern of this group occupies shared-bus lines; with
  /// EvaluatorOptions::exclusive_bus the bus becomes a scheduling resource
  /// (at most one bus-using SI test at a time).
  bool uses_bus = false;
};

struct SiTestSet {
  int parts = 1;                    ///< Grouping parameter i of the paper.
  std::vector<SiTestGroup> groups;  ///< Non-empty groups only.

  [[nodiscard]] std::int64_t total_patterns() const;
  [[nodiscard]] std::int64_t total_raw_patterns() const;
};

struct GroupingConfig {
  PartitionConfig partition;  ///< Partitioner knobs (seeded, deterministic).
  int bus_width = 32;         ///< Bus postfix width (accumulator sizing).
  /// Vertical-compaction knobs, forwarded to compact_greedy for every
  /// bucket. The deterministic parallel sweep keeps the output identical
  /// for any thread count, so this only changes wall-clock time.
  CompactionConfig compaction;
};

/// Builds the core-level hypergraph of §3/Fig. 2 from a raw pattern set.
[[nodiscard]] Hypergraph build_core_hypergraph(
    std::span<const SiPattern> patterns, const TerminalSpace& terminals);

/// Assigns every group a peak-power rating:
///   power = base_units + units_per_cell * Σ boundary cells of its cores.
/// The per-cell term models boundary switching; `base_units` models the
/// fixed cost of an active test session (clock tree, ATE channel drivers),
/// which is what makes concurrent sessions compete for the budget even
/// when their cores are disjoint. Used by the power-constrained scheduling
/// extension.
void assign_si_power(SiTestSet& set, const Soc& soc,
                     std::int64_t units_per_cell = 1,
                     std::int64_t base_units = 0);

/// Full two-dimensional compaction: partitions cores into `parts` groups,
/// buckets the patterns, and vertically compacts each bucket. parts == 1
/// degenerates to pure one-dimensional (count-only) compaction with a single
/// group spanning all cores. Throws std::invalid_argument for parts < 1.
[[nodiscard]] SiTestSet build_si_test_set(std::span<const SiPattern> patterns,
                                          const TerminalSpace& terminals,
                                          int parts,
                                          const GroupingConfig& config);

}  // namespace sitam
