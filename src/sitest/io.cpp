#include "sitest/io.h"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sitam {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + message);
}

std::int64_t parse_int(std::string_view token, int line) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail(line, "expected integer, got '" + std::string(token) + "'");
  }
  return value;
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\r')) {
      ++pos;
    }
    std::size_t end = pos;
    while (end < text.size() && text[end] != ' ' && text[end] != '\t' &&
           text[end] != '\r') {
      ++end;
    }
    if (end > pos) tokens.push_back(text.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

// Key=value field scans start at `begin` so that positional tokens — the
// line keyword and the group label — can never shadow a field. A label is
// free-form (it may itself look like "patterns=7"), so group lines scan
// from token 2.
std::int64_t header_value(const std::vector<std::string_view>& tokens,
                          std::size_t begin, std::string_view key,
                          int line) {
  for (std::size_t i = begin; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const auto eq = token.find('=');
    if (eq != std::string_view::npos && token.substr(0, eq) == key) {
      return parse_int(token.substr(eq + 1), line);
    }
  }
  fail(line, "missing header field '" + std::string(key) + "'");
}

std::int64_t optional_header_value(
    const std::vector<std::string_view>& tokens, std::size_t begin,
    std::string_view key, std::int64_t fallback, int line) {
  for (std::size_t i = begin; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const auto eq = token.find('=');
    if (eq != std::string_view::npos && token.substr(0, eq) == key) {
      return parse_int(token.substr(eq + 1), line);
    }
  }
  return fallback;
}

}  // namespace

std::string test_set_to_text(const SiTestSet& set) {
  std::ostringstream os;
  os << "SiTestSet parts=" << set.parts << " groups=" << set.groups.size()
     << "\n";
  for (const SiTestGroup& g : set.groups) {
    // The format is line- and whitespace-delimited, so a label that is
    // empty or contains whitespace cannot survive a round trip — reject it
    // here instead of writing a file test_set_from_text mis-parses.
    if (g.label.empty() ||
        g.label.find_first_of(" \t\r\n") != std::string::npos) {
      throw std::invalid_argument(
          "test_set_to_text: group label '" + g.label +
          "' is empty or contains whitespace and cannot be serialized");
    }
    os << "group " << g.label << " remainder=" << (g.is_remainder ? 1 : 0)
       << " patterns=" << g.patterns << " raw=" << g.raw_patterns
       << " power=" << g.power << " bus=" << (g.uses_bus ? 1 : 0)
       << " cores=";
    for (std::size_t i = 0; i < g.cores.size(); ++i) {
      if (i != 0) os << ',';
      os << g.cores[i];
    }
    os << "\n";
  }
  return os.str();
}

SiTestSet test_set_from_text(std::string_view text) {
  SiTestSet set;
  int line_no = 0;
  std::size_t pos = 0;
  bool saw_header = false;
  std::size_t expected = 0;

  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    const std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos
                                          : nl - pos);
    ++line_no;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    const auto tokens = split_ws(line);
    if (tokens.empty()) continue;

    if (!saw_header) {
      if (tokens[0] != "SiTestSet") fail(line_no, "missing SiTestSet header");
      set.parts =
          static_cast<int>(header_value(tokens, 1, "parts", line_no));
      expected = static_cast<std::size_t>(
          header_value(tokens, 1, "groups", line_no));
      saw_header = true;
      continue;
    }

    if (tokens[0] != "group" || tokens.size() < 2) {
      fail(line_no, "expected 'group <label> ...'");
    }
    SiTestGroup group;
    group.label = std::string(tokens[1]);
    // Fields start after the label (token 1): a free-form label like
    // "patterns=7" must not shadow the real fields.
    group.is_remainder =
        header_value(tokens, 2, "remainder", line_no) != 0;
    group.patterns = header_value(tokens, 2, "patterns", line_no);
    group.raw_patterns = header_value(tokens, 2, "raw", line_no);
    group.power = header_value(tokens, 2, "power", line_no);
    group.uses_bus =
        optional_header_value(tokens, 2, "bus", 0, line_no) != 0;
    // cores=...
    bool saw_cores = false;
    for (std::size_t t = 2; t < tokens.size(); ++t) {
      const std::string_view token = tokens[t];
      if (token.rfind("cores=", 0) != 0) continue;
      saw_cores = true;
      std::string_view list = token.substr(6);
      while (!list.empty()) {
        const auto comma = list.find(',');
        const std::string_view item =
            list.substr(0, comma == std::string_view::npos
                               ? std::string_view::npos
                               : comma);
        if (!item.empty()) {
          group.cores.push_back(static_cast<int>(parse_int(item, line_no)));
        }
        if (comma == std::string_view::npos) break;
        list.remove_prefix(comma + 1);
      }
    }
    if (!saw_cores) fail(line_no, "group without cores= field");
    set.groups.push_back(std::move(group));
  }

  if (!saw_header) fail(1, "empty test set file");
  if (set.groups.size() != expected) {
    fail(line_no, "header declared " + std::to_string(expected) +
                      " groups but found " +
                      std::to_string(set.groups.size()));
  }
  return set;
}

}  // namespace sitam
