// Text serialization for compacted SI test sets.
//
// Format (line-oriented, diff-friendly):
//
//   SiTestSet parts=<i> groups=<K>
//   group <label> remainder=<0|1> patterns=<p> raw=<r> power=<w> cores=<c,c,...>
#pragma once

#include <string>
#include <string_view>

#include "sitest/group.h"

namespace sitam {

/// Serializes a compacted SI test set.
[[nodiscard]] std::string test_set_to_text(const SiTestSet& set);

/// Parses a test set; throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] SiTestSet test_set_from_text(std::string_view text);

}  // namespace sitam
