// Text serialization for compacted SI test sets.
//
// Format (line-oriented, diff-friendly):
//
//   SiTestSet parts=<i> groups=<K>
//   group <label> remainder=<0|1> patterns=<p> raw=<r> power=<w> cores=<c,c,...>
//
// The label is a single free-form token: it may not be empty or contain
// whitespace (the writer rejects such sets), but it may otherwise look like
// anything — including a key=value field such as "patterns=7", which the
// parser must not confuse with the real fields (they are scanned strictly
// after the label). The optional bus=<0|1> field defaults to 0 when absent.
#pragma once

#include <string>
#include <string_view>

#include "sitest/group.h"

namespace sitam {

/// Serializes a compacted SI test set. Throws std::invalid_argument when a
/// group label is empty or contains whitespace (it could not round-trip).
[[nodiscard]] std::string test_set_to_text(const SiTestSet& set);

/// Parses a test set; throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] SiTestSet test_set_from_text(std::string_view text);

}  // namespace sitam
