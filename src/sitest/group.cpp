#include "sitest/group.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/check.h"

namespace sitam {

std::int64_t SiTestSet::total_patterns() const {
  std::int64_t sum = 0;
  for (const SiTestGroup& g : groups) sum += g.patterns;
  return sum;
}

std::int64_t SiTestSet::total_raw_patterns() const {
  std::int64_t sum = 0;
  for (const SiTestGroup& g : groups) sum += g.raw_patterns;
  return sum;
}

void assign_si_power(SiTestSet& set, const Soc& soc,
                     std::int64_t units_per_cell, std::int64_t base_units) {
  if (units_per_cell < 0 || base_units < 0) {
    throw std::invalid_argument("assign_si_power: negative unit");
  }
  for (SiTestGroup& group : set.groups) {
    std::int64_t cells = 0;
    for (const int core : group.cores) {
      if (core < 0 || core >= soc.core_count()) {
        throw std::invalid_argument(
            "assign_si_power: group references a core outside the SOC");
      }
      cells += soc.modules[static_cast<std::size_t>(core)].boundary_cells();
    }
    group.power = base_units + cells * units_per_cell;
  }
}

Hypergraph build_core_hypergraph(std::span<const SiPattern> patterns,
                                 const TerminalSpace& terminals) {
  Hypergraph hg;
  hg.vertex_weights.reserve(
      static_cast<std::size_t>(terminals.core_count()));
  for (int core = 0; core < terminals.core_count(); ++core) {
    hg.vertex_weights.push_back(terminals.woc(core));
  }
  for (const SiPattern& p : patterns) {
    Hyperedge edge;
    edge.pins = p.care_cores(terminals);
    edge.weight = 1;
    if (!edge.pins.empty()) hg.edges.push_back(std::move(edge));
  }
  hg.normalize();  // merges identical care sets, summing multiplicities
  return hg;
}

SiTestSet build_si_test_set(std::span<const SiPattern> patterns,
                            const TerminalSpace& terminals, int parts,
                            const GroupingConfig& config) {
  if (parts < 1) {
    throw std::invalid_argument("build_si_test_set: parts must be >= 1");
  }
  const int cores = terminals.core_count();
  std::vector<int> all_cores(static_cast<std::size_t>(cores));
  std::iota(all_cores.begin(), all_cores.end(), 0);

  SiTestSet set;
  set.parts = parts;

  const auto compact = [&](std::span<const SiPattern> bucket) {
    return compact_greedy(bucket, terminals.total(), config.bus_width,
                          config.compaction);
  };
  const auto any_bus = [](std::span<const SiPattern> bucket) {
    for (const SiPattern& p : bucket) {
      if (!p.bus_bits().empty()) return true;
    }
    return false;
  };

  if (parts == 1) {
    // Pure vertical compaction; every pattern loads all cores' WOCs.
    if (!patterns.empty()) {
      const CompactionResult compacted = compact(patterns);
      SiTestGroup group;
      group.label = "g1";
      group.cores = all_cores;
      group.raw_patterns = static_cast<std::int64_t>(patterns.size());
      group.patterns =
          static_cast<std::int64_t>(compacted.patterns.size());
      group.uses_bus = any_bus(patterns);
      set.groups.push_back(std::move(group));
    }
    return set;
  }

  // Partition cores to minimize the (weighted) number of cross-group
  // patterns; then bucket each pattern by the part of its care cores.
  const Hypergraph hg = build_core_hypergraph(patterns, terminals);
  const Partition partition =
      partition_hypergraph(hg, parts, config.partition);

  std::vector<std::vector<SiPattern>> buckets(
      static_cast<std::size_t>(parts));
  std::vector<SiPattern> remainder;
  for (const SiPattern& p : patterns) {
    const auto care = p.care_cores(terminals);
    // Per-pattern in the bucketing loop: debug/sanitizer builds only. An
    // all-don't-care pattern would be dropped by compaction upstream.
    SITAM_DCHECK_MSG(!care.empty(), "pattern with no care cores");
    const int part = partition.part_of[static_cast<std::size_t>(care[0])];
    const bool local = std::all_of(care.begin(), care.end(), [&](int c) {
      return partition.part_of[static_cast<std::size_t>(c)] == part;
    });
    if (local) {
      buckets[static_cast<std::size_t>(part)].push_back(p);
    } else {
      remainder.push_back(p);
    }
  }

  for (int part = 0; part < parts; ++part) {
    const auto& bucket = buckets[static_cast<std::size_t>(part)];
    if (bucket.empty()) continue;
    SiTestGroup group;
    group.label = "g" + std::to_string(part + 1);
    for (int core = 0; core < cores; ++core) {
      if (partition.part_of[static_cast<std::size_t>(core)] == part) {
        group.cores.push_back(core);
      }
    }
    group.raw_patterns = static_cast<std::int64_t>(bucket.size());
    group.patterns =
        static_cast<std::int64_t>(compact(bucket).patterns.size());
    group.uses_bus = any_bus(bucket);
    set.groups.push_back(std::move(group));
  }

  if (!remainder.empty()) {
    SiTestGroup group;
    group.label = "rem";
    group.cores = all_cores;  // cross-group patterns load every boundary
    group.is_remainder = true;
    group.raw_patterns = static_cast<std::int64_t>(remainder.size());
    group.patterns =
        static_cast<std::int64_t>(compact(remainder).patterns.size());
    group.uses_bus = any_bus(remainder);
    set.groups.push_back(std::move(group));
  }
  return set;
}

}  // namespace sitam
