#include "soc/itc02.h"

#include <charconv>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "util/log.h"

namespace sitam {

namespace {

struct Token {
  std::string_view text;
  int line;
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("itc02 line " + std::to_string(line) + ": " +
                           message);
}

/// Whole-file tokenizer: whitespace-separated words, '#' comments, a ':'
/// is its own token (the ScanChains separator).
std::vector<Token> tokenize(std::string_view text) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const char ch = text[pos];
    if (ch == '\n') {
      ++line;
      ++pos;
      continue;
    }
    if (ch == ' ' || ch == '\t' || ch == '\r') {
      ++pos;
      continue;
    }
    if (ch == '#') {
      while (pos < text.size() && text[pos] != '\n') ++pos;
      continue;
    }
    if (ch == ':') {
      tokens.push_back(Token{text.substr(pos, 1), line});
      ++pos;
      continue;
    }
    std::size_t end = pos;
    while (end < text.size() && text[end] != ' ' && text[end] != '\t' &&
           text[end] != '\r' && text[end] != '\n' && text[end] != '#' &&
           text[end] != ':') {
      ++end;
    }
    tokens.push_back(Token{text.substr(pos, end - pos), line});
    pos = end;
  }
  return tokens;
}

bool is_integer(std::string_view text) {
  if (text.empty()) return false;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : tokens_(tokenize(text)) {}

  Soc run() {
    Soc soc;
    std::optional<Module> current;
    int current_level = -1;
    int declared_modules = -1;
    // Per-test accumulation: TamUse decides whether TestPatterns count as
    // externally-applied patterns (shifted over the TAM — scan or
    // combinational) or as at-speed BIST cycles that need no TAM bandwidth.
    std::int64_t pending_patterns = 0;
    bool pending_tam_use = true;

    const auto flush_test = [&] {
      if (!current || pending_patterns == 0) return;
      if (pending_tam_use) {
        current->patterns += pending_patterns;
      } else {
        current->bist_patterns += pending_patterns;
      }
      pending_patterns = 0;
      pending_tam_use = true;
    };

    const auto finish_module = [&] {
      flush_test();
      if (!current) return;
      // Drop the SOC top (level 0) and terminal-less blocks.
      if (current_level != 0 && current->boundary_cells() > 0) {
        soc.modules.push_back(std::move(*current));
      } else {
        SITAM_DEBUG << "itc02: dropping module " << current->id
                    << " (level " << current_level << ", "
                    << current->boundary_cells() << " terminals)";
      }
      current.reset();
      current_level = -1;
    };

    const auto require_module = [&](int line, std::string_view directive) {
      if (!current) {
        fail(line, std::string(directive) + " outside of a Module block");
      }
    };

    while (!done()) {
      const Token token = next();
      const std::string_view word = token.text;
      if (word == "SocName") {
        soc.name = std::string(expect_word("SOC name"));
      } else if (word == "TotalModules") {
        declared_modules = expect_int("module count");
      } else if (word == "Module") {
        finish_module();
        Module m;
        m.id = expect_int("module id") + 1;  // our ids are 1-based
        m.name = "module" + std::to_string(m.id - 1);
        current = std::move(m);
        current_level = -1;
      } else if (word == "Level") {
        require_module(token.line, word);
        current_level = expect_int("level");
      } else if (word == "Inputs") {
        require_module(token.line, word);
        current->inputs = expect_int("inputs");
      } else if (word == "Outputs") {
        require_module(token.line, word);
        current->outputs = expect_int("outputs");
      } else if (word == "Bidirs") {
        require_module(token.line, word);
        current->bidirs = expect_int("bidirs");
      } else if (word == "ScanChains") {
        require_module(token.line, word);
        const int count = expect_int("scan chain count");
        // Optional ": l1 l2 ... lk".
        if (!done() && peek().text == ":") {
          (void)next();
          for (int i = 0; i < count; ++i) {
            current->scan_chains.push_back(expect_int("scan chain length"));
          }
        } else if (count != 0) {
          fail(token.line, "ScanChains count without ':' length list");
        }
      } else if (word == "Test") {
        require_module(token.line, word);
        flush_test();
        (void)expect_int("test index");
      } else if (word == "TotalTests" || word == "TestOrder") {
        (void)expect_int("test count");
      } else if (word == "TestPatterns") {
        require_module(token.line, word);
        pending_patterns += expect_int("pattern count");
      } else if (word == "TamUse") {
        require_module(token.line, word);
        pending_tam_use = expect_word("yes/no") != "no";
      } else if (word == "ScanUse") {
        (void)expect_word("yes/no");
      } else {
        // Tolerate informational fields: skip the word and any immediate
        // integer arguments.
        SITAM_DEBUG << "itc02: skipping directive '" << word << "'";
        while (!done() && is_integer(peek().text)) (void)next();
      }
    }
    finish_module();

    if (soc.name.empty()) fail(1, "missing SocName");
    if (soc.modules.empty()) fail(1, "no wrapped modules found");
    if (declared_modules >= 0) {
      SITAM_DEBUG << "itc02: " << soc.name << " declared "
                  << declared_modules << " modules, kept "
                  << soc.modules.size() << " wrapped cores";
    }
    validate(soc);
    return soc;
  }

 private:
  [[nodiscard]] bool done() const { return index_ >= tokens_.size(); }
  [[nodiscard]] const Token& peek() const { return tokens_[index_]; }
  const Token& next() { return tokens_[index_++]; }

  std::string_view expect_word(const char* what) {
    if (done()) fail(last_line(), std::string("expected ") + what);
    return next().text;
  }

  int expect_int(const char* what) {
    if (done()) fail(last_line(), std::string("expected ") + what);
    const Token token = next();
    int value = 0;
    const auto [ptr, ec] = std::from_chars(
        token.text.data(), token.text.data() + token.text.size(), value);
    if (ec != std::errc{} ||
        ptr != token.text.data() + token.text.size()) {
      fail(token.line, std::string("expected integer for ") + what +
                           ", got '" + std::string(token.text) + "'");
    }
    return value;
  }

  [[nodiscard]] int last_line() const {
    return tokens_.empty() ? 1 : tokens_.back().line;
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

Soc parse_itc02(std::string_view text) {
  Parser parser(text);
  return parser.run();
}

Soc load_itc02_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open ITC'02 file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_itc02(buffer.str());
}

}  // namespace sitam
