// Serializer for the sitam `.soc` format; the inverse of parse_soc().
#pragma once

#include <string>

#include "soc/soc.h"

namespace sitam {

/// Renders the SOC in the `.soc` format; parse_soc(soc_to_text(s)) == s.
/// Runs of equal-length scan chains are emitted with the compact NxL syntax.
[[nodiscard]] std::string soc_to_text(const Soc& soc);

/// Writes the SOC to a file; throws std::runtime_error if it cannot write.
void save_soc_file(const Soc& soc, const std::string& path);

}  // namespace sitam
