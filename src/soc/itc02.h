// Compatibility parser for the original ITC'02 SOC Test Benchmark format.
//
// Users who have the official `.soc` files (p93791.soc, p22810.soc, ...)
// can load them directly; the hierarchy is flattened to the wrapped-core
// list this library works with (the paper does the same: "we do not
// consider hierarchy"). The dialect accepted here follows the published
// benchmark descriptions:
//
//   SocName <name>
//   TotalModules <n>
//   Module <id>
//     Level <l>                  # 0 = SOC top-level
//     Inputs <n>  Outputs <n>  Bidirs <n>
//     ScanChains <k> [: <len1> ... <lenk>]
//     TotalTests <t>             # optional
//     Test <i>                   # or "Test <i>:"
//       TamUse <yes|no>  ScanUse <yes|no>
//       TestPatterns <p>
//
// Directives may share lines; '#' starts a comment. Unknown directives are
// skipped with a warning rather than rejected (the official files carry
// several informational fields). Conversion rules (documented choices):
//  * Module 0 / Level 0 (the SOC top) is dropped — it has no wrapper.
//  * A module's pattern count is the sum of its tests' TestPatterns (all
//    test sets must be applied).
//  * Modules without terminals are dropped (nothing to wrap).
#pragma once

#include <string>
#include <string_view>

#include "soc/soc.h"

namespace sitam {

/// Parses ITC'02 text into a flat Soc; throws std::runtime_error with a
/// line number on structural errors. The result passes validate().
[[nodiscard]] Soc parse_itc02(std::string_view text);

/// Reads and parses an ITC'02 `.soc` file.
[[nodiscard]] Soc load_itc02_file(const std::string& path);

}  // namespace sitam
