#include "soc/soc.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace sitam {

std::int64_t Module::scan_flops() const {
  return std::accumulate(scan_chains.begin(), scan_chains.end(),
                         std::int64_t{0});
}

int Module::max_scan_chain() const {
  if (scan_chains.empty()) return 0;
  return *std::max_element(scan_chains.begin(), scan_chains.end());
}

const Module& Soc::module_by_id(int id) const {
  for (const Module& m : modules) {
    if (m.id == id) return m;
  }
  throw std::out_of_range("Soc '" + name + "' has no module with id " +
                          std::to_string(id));
}

std::int64_t Soc::total_woc() const {
  std::int64_t sum = 0;
  for (const Module& m : modules) sum += m.woc();
  return sum;
}

std::int64_t Soc::total_wic() const {
  std::int64_t sum = 0;
  for (const Module& m : modules) sum += m.wic();
  return sum;
}

std::int64_t Soc::total_test_data_volume() const {
  std::int64_t sum = 0;
  for (const Module& m : modules) sum += m.test_data_volume();
  return sum;
}

std::uint64_t soc_structure_hash(const Soc& soc) {
  std::uint64_t h = 0x5174616d'50c0de01ULL;  // arbitrary nonzero basis
  const auto mix = [&h](std::uint64_t value) {
    h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  const auto mix_string = [&](const std::string& s) {
    mix(s.size());
    for (const char c : s) mix(static_cast<unsigned char>(c));
  };
  mix_string(soc.name);
  mix(soc.modules.size());
  for (const Module& m : soc.modules) {
    mix(static_cast<std::uint64_t>(m.id));
    mix_string(m.name);
    mix(static_cast<std::uint64_t>(m.inputs));
    mix(static_cast<std::uint64_t>(m.outputs));
    mix(static_cast<std::uint64_t>(m.bidirs));
    mix(m.scan_chains.size());
    for (const int len : m.scan_chains) mix(static_cast<std::uint64_t>(len));
    mix(static_cast<std::uint64_t>(m.patterns));
    mix(static_cast<std::uint64_t>(m.bist_patterns));
  }
  return h;
}

void validate(const Soc& soc) {
  if (soc.name.empty()) {
    throw std::invalid_argument("SOC name must not be empty");
  }
  if (soc.modules.empty()) {
    throw std::invalid_argument("SOC '" + soc.name + "' has no modules");
  }
  std::unordered_set<int> ids;
  for (const Module& m : soc.modules) {
    const std::string where =
        "module " + std::to_string(m.id) + " ('" + m.name + "')";
    if (m.id <= 0) {
      throw std::invalid_argument(where + ": id must be positive");
    }
    if (!ids.insert(m.id).second) {
      throw std::invalid_argument(where + ": duplicate id");
    }
    if (m.name.empty()) {
      throw std::invalid_argument(where + ": name must not be empty");
    }
    if (m.inputs < 0 || m.outputs < 0 || m.bidirs < 0) {
      throw std::invalid_argument(where + ": negative terminal count");
    }
    if (m.boundary_cells() == 0) {
      throw std::invalid_argument(where + ": module has no terminals");
    }
    if (m.patterns < 0 || m.bist_patterns < 0) {
      throw std::invalid_argument(where + ": negative pattern count");
    }
    for (const int len : m.scan_chains) {
      if (len <= 0) {
        throw std::invalid_argument(where + ": scan chain length " +
                                    std::to_string(len) +
                                    " must be positive");
      }
    }
  }
}

}  // namespace sitam
