#include "soc/parser.h"

#include <charconv>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

namespace sitam {

namespace {

/// Splits a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
      ++pos;
    }
    if (pos >= line.size() || line[pos] == '#') break;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != '\r' && line[end] != '#') {
      ++end;
    }
    tokens.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

std::int64_t parse_int(std::string_view token, int line) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw SocParseError(line, "expected integer, got '" + std::string(token) +
                                  "'");
  }
  return value;
}

/// Parses a scan-chain spec token: either "L" or "NxL".
void parse_chain_spec(std::string_view token, int line,
                      std::vector<int>& chains) {
  const auto x = token.find('x');
  if (x == std::string_view::npos) {
    chains.push_back(static_cast<int>(parse_int(token, line)));
    return;
  }
  const std::int64_t count = parse_int(token.substr(0, x), line);
  const std::int64_t length = parse_int(token.substr(x + 1), line);
  if (count <= 0) {
    throw SocParseError(line, "chain repeat count must be positive");
  }
  // No real core has a six-figure scan-chain count; reject rather than
  // allocate unbounded memory on malformed/hostile input.
  if (count > 100000) {
    throw SocParseError(line, "chain repeat count " + std::to_string(count) +
                                  " is implausibly large");
  }
  for (std::int64_t i = 0; i < count; ++i) {
    chains.push_back(static_cast<int>(length));
  }
}

}  // namespace

Soc parse_soc(std::string_view text) {
  Soc soc;
  std::optional<Module> current;
  bool saw_soc_line = false;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                      : nl - pos);
    ++line_no;
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;

    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string_view keyword = tokens[0];

    if (keyword == "Soc") {
      if (saw_soc_line) throw SocParseError(line_no, "duplicate Soc line");
      if (tokens.size() != 2) {
        throw SocParseError(line_no, "Soc expects exactly one name");
      }
      soc.name = std::string(tokens[1]);
      saw_soc_line = true;
    } else if (keyword == "Module") {
      if (!saw_soc_line) {
        throw SocParseError(line_no, "Module before Soc line");
      }
      if (current) {
        throw SocParseError(line_no, "Module without End for previous module");
      }
      if (tokens.size() < 2 || tokens.size() > 3) {
        throw SocParseError(line_no, "Module expects: Module <id> [<name>]");
      }
      Module m;
      m.id = static_cast<int>(parse_int(tokens[1], line_no));
      m.name = tokens.size() == 3 ? std::string(tokens[2])
                                  : "module" + std::to_string(m.id);
      current = std::move(m);
    } else if (keyword == "End") {
      if (!current) throw SocParseError(line_no, "End without Module");
      soc.modules.push_back(std::move(*current));
      current.reset();
    } else if (keyword == "Inputs" || keyword == "Outputs" ||
               keyword == "Bidirs" || keyword == "Patterns" ||
               keyword == "BistPatterns") {
      if (!current) {
        throw SocParseError(line_no, std::string(keyword) +
                                         " outside of a Module block");
      }
      if (tokens.size() != 2) {
        throw SocParseError(line_no,
                            std::string(keyword) + " expects one integer");
      }
      const std::int64_t value = parse_int(tokens[1], line_no);
      if (keyword == "Inputs") {
        current->inputs = static_cast<int>(value);
      } else if (keyword == "Outputs") {
        current->outputs = static_cast<int>(value);
      } else if (keyword == "Bidirs") {
        current->bidirs = static_cast<int>(value);
      } else if (keyword == "BistPatterns") {
        current->bist_patterns = value;
      } else {
        current->patterns = value;
      }
    } else if (keyword == "ScanChains") {
      if (!current) {
        throw SocParseError(line_no, "ScanChains outside of a Module block");
      }
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        parse_chain_spec(tokens[i], line_no, current->scan_chains);
      }
    } else {
      throw SocParseError(line_no,
                          "unknown directive '" + std::string(keyword) + "'");
    }
  }

  if (current) {
    throw SocParseError(line_no, "missing End for module " +
                                     std::to_string(current->id));
  }
  if (!saw_soc_line) throw SocParseError(1, "missing Soc line");

  try {
    validate(soc);
  } catch (const std::invalid_argument& err) {
    throw SocParseError(line_no, err.what());
  }
  return soc;
}

Soc load_soc_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SOC file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_soc(buffer.str());
}

}  // namespace sitam
