#include "soc/benchmarks.h"

#include <stdexcept>

#include "soc/parser.h"

namespace sitam {

namespace {

// Approximate reconstruction of the academic d695 SOC (ten ISCAS cores).
// Per-core numbers follow the published ITC'02 benchmark description; a few
// scan-chain partitions are approximated where the exact split is not
// documented.
constexpr const char* kD695 = R"(Soc d695

Module 1 c6288
  Inputs 32
  Outputs 32
  Patterns 12
End

Module 2 c7552
  Inputs 207
  Outputs 108
  Patterns 73
End

Module 3 s838
  Inputs 35
  Outputs 2
  ScanChains 1x32
  Patterns 75
End

Module 4 s9234
  Inputs 36
  Outputs 39
  ScanChains 4x57
  Patterns 105
End

Module 5 s38584
  Inputs 38
  Outputs 304
  ScanChains 30x45 2x38
  Patterns 110
End

Module 6 s13207
  Inputs 62
  Outputs 152
  ScanChains 15x40 1x38
  Patterns 234
End

Module 7 s15850
  Inputs 77
  Outputs 150
  ScanChains 15x34 1x24
  Patterns 95
End

Module 8 s5378
  Inputs 35
  Outputs 49
  ScanChains 4x45
  Patterns 97
End

Module 9 s35932
  Inputs 35
  Outputs 320
  ScanChains 32x54
  Patterns 12
End

Module 10 s38417
  Inputs 28
  Outputs 106
  ScanChains 32x51
  Patterns 68
End
)";

// Synthetic 19-module SOC calibrated against the published p34392
// TR-Architect results: one dominant core (module 18) whose minimum test
// time creates the characteristic plateau for W >= 32, plus a long tail of
// small logic blocks. See DESIGN.md §3.
constexpr const char* kP34392 = R"(Soc p34392

Module 1 blk1
  Inputs 66
  Outputs 78
  Patterns 650
End

Module 2 blk2
  Inputs 165
  Outputs 263
  ScanChains 12x190 12x205
  Patterns 170
End

Module 3 blk3
  Inputs 136
  Outputs 55
  ScanChains 1x92
  Patterns 1600
End

Module 4 blk4
  Inputs 29
  Outputs 26
  ScanChains 2x54 2x60
  Patterns 900
End

Module 5 blk5
  Inputs 20
  Outputs 108
  ScanChains 112 124
  Patterns 900
End

Module 6 blk6
  Inputs 36
  Outputs 65
  ScanChains 3x90 3x110
  Patterns 1100
End

Module 7 blk7
  Inputs 62
  Outputs 152
  ScanChains 4x70 4x90
  Patterns 590
End

Module 8 blk8
  Inputs 119
  Outputs 68
  ScanChains 2x120 2x140
  Patterns 900
End

Module 9 blk9
  Inputs 188
  Outputs 104
  ScanChains 6x150 6x170
  Patterns 420
End

Module 10 blk10
  Inputs 234
  Outputs 185
  ScanChains 8x120
  Patterns 235
End

Module 11 blk11
  Inputs 84
  Outputs 36
  ScanChains 60 64
  Patterns 295
End

Module 12 blk12
  Inputs 36
  Outputs 39
  ScanChains 2x50 2x56
  Patterns 1100
End

Module 13 blk13
  Inputs 77
  Outputs 150
  ScanChains 4x95 4x115
  Patterns 320
End

Module 14 blk14
  Inputs 35
  Outputs 49
  ScanChains 4x46
  Patterns 1100
End

Module 15 blk15
  Inputs 42
  Outputs 75
  ScanChains 3x66 3x78
  Patterns 800
End

Module 16 blk16
  Inputs 214
  Outputs 228
  ScanChains 7x130 7x160
  Patterns 280
End

Module 17 blk17
  Inputs 38
  Outputs 32
  ScanChains 1x128
  Patterns 730
End

Module 18 blk18
  Inputs 173
  Outputs 173
  ScanChains 570 565 560 555 550 545 540 535 530 525 520 515 510 505 500
  Patterns 930
End

Module 19 blk19
  Inputs 108
  Outputs 146
  ScanChains 4x88 4x108
  Patterns 495
End
)";

// Synthetic 32-module SOC calibrated against the published p93791
// TR-Architect results (~29M bit total serial test volume, no single
// dominant core, scales smoothly up to W = 64). See DESIGN.md §3.
constexpr const char* kP93791 = R"(Soc p93791

Module 1 core1
  Inputs 109
  Outputs 32
  Bidirs 72
  ScanChains 46x168
  Patterns 409
End

Module 2 core2
  Inputs 31
  Outputs 23
  Patterns 190
End

Module 3 core3
  Inputs 38
  Outputs 25
  ScanChains 2x80
  Patterns 216
End

Module 4 core4
  Inputs 40
  Outputs 23
  ScanChains 2x92
  Patterns 86
End

Module 5 core5
  Inputs 116
  Outputs 29
  ScanChains 4x140
  Patterns 178
End

Module 6 core6
  Inputs 417
  Outputs 324
  Bidirs 72
  ScanChains 23x490 23x500
  Patterns 218
End

Module 7 core7
  Inputs 54
  Outputs 38
  ScanChains 4x120
  Patterns 150
End

Module 8 core8
  Inputs 36
  Outputs 21
  ScanChains 2x88
  Patterns 125
End

Module 9 core9
  Inputs 44
  Outputs 35
  ScanChains 3x105
  Patterns 140
End

Module 10 core10
  Inputs 48
  Outputs 64
  ScanChains 4x92
  Patterns 132
End

Module 11 core11
  Inputs 146
  Outputs 68
  Bidirs 72
  ScanChains 11x82 6x80
  Patterns 2120
End

Module 12 core12
  Inputs 42
  Outputs 24
  ScanChains 2x76
  Patterns 112
End

Module 13 core13
  Inputs 214
  Outputs 68
  ScanChains 12x260
  Patterns 270
End

Module 14 core14
  Inputs 58
  Outputs 31
  ScanChains 4x84
  Patterns 118
End

Module 15 core15
  Inputs 48
  Outputs 83
  ScanChains 4x110
  Patterns 126
End

Module 16 core16
  Inputs 36
  Outputs 26
  ScanChains 2x95
  Patterns 160
End

Module 17 core17
  Inputs 180
  Outputs 136
  ScanChains 18x310
  Patterns 460
End

Module 18 core18
  Inputs 42
  Outputs 28
  ScanChains 3x90
  Patterns 105
End

Module 19 core19
  Inputs 52
  Outputs 44
  ScanChains 4x100
  Patterns 135
End

Module 20 core20
  Inputs 136
  Outputs 12
  Bidirs 72
  ScanChains 44x181
  Patterns 290
End

Module 21 core21
  Inputs 34
  Outputs 22
  ScanChains 2x70
  Patterns 120
End

Module 22 core22
  Inputs 66
  Outputs 50
  ScanChains 5x115
  Patterns 145
End

Module 23 core23
  Inputs 174
  Outputs 81
  Bidirs 72
  ScanChains 23x395 23x405
  Patterns 202
End

Module 24 core24
  Inputs 38
  Outputs 29
  ScanChains 2x85
  Patterns 110
End

Module 25 core25
  Inputs 94
  Outputs 88
  ScanChains 8x150
  Patterns 325
End

Module 26 core26
  Inputs 40
  Outputs 32
  ScanChains 3x95
  Patterns 128
End

Module 27 core27
  Inputs 30
  Outputs 7
  Bidirs 72
  ScanChains 23x425 23x435
  Patterns 119
End

Module 28 core28
  Inputs 44
  Outputs 38
  ScanChains 3x100
  Patterns 135
End

Module 29 core29
  Inputs 82
  Outputs 66
  ScanChains 6x130
  Patterns 240
End

Module 30 core30
  Inputs 36
  Outputs 23
  ScanChains 2x78
  Patterns 115
End

Module 31 core31
  Inputs 140
  Outputs 102
  ScanChains 12x230
  Patterns 330
End

Module 32 core32
  Inputs 46
  Outputs 39
  ScanChains 3x112
  Patterns 148
End
)";

// Stylized 28-module SOC in the magnitude class of ITC'02's p22810
// (~7.3M bit serial InTest volume, a handful of mid-size cores, long tail
// of small blocks). Not cell-by-cell calibrated; see DESIGN.md §3.
constexpr const char* kP22810 = R"(Soc p22810

Module 1 ac1
  Inputs 140
  Outputs 120
  ScanChains 12x210
  Patterns 572
End

Module 2 ac2
  Inputs 100
  Outputs 180
  ScanChains 10x180
  Patterns 640
End

Module 3 ac3
  Inputs 160
  Outputs 90
  ScanChains 8x240
  Patterns 555
End

Module 4 bm4
  Inputs 58
  Outputs 58
  ScanChains 6x88
  Patterns 402
End

Module 5 bm5
  Inputs 119
  Outputs 88
  ScanChains 6x132
  Patterns 535
End

Module 6 bm6
  Inputs 104
  Outputs 46
  ScanChains 2x78
  Patterns 333
End

Module 7 bm7
  Inputs 76
  Outputs 106
  ScanChains 4x112
  Patterns 515
End

Module 8 bm8
  Inputs 55
  Outputs 102
  ScanChains 6x111
  Patterns 473
End

Module 9 bm9
  Inputs 103
  Outputs 97
  ScanChains 6x71
  Patterns 475
End

Module 10 bm10
  Inputs 39
  Outputs 109
  ScanChains 5x115
  Patterns 535
End

Module 11 bm11
  Inputs 62
  Outputs 105
  ScanChains 4x137
  Patterns 379
End

Module 12 bm12
  Inputs 73
  Outputs 87
  ScanChains 5x91
  Patterns 316
End

Module 13 bm13
  Inputs 56
  Outputs 41
  ScanChains 2x102
  Patterns 325
End

Module 14 sc14
  Inputs 45
  Outputs 31
  Patterns 256
End

Module 15 sc15
  Inputs 22
  Outputs 12
  ScanChains 53
  Patterns 85
End

Module 16 sc16
  Inputs 18
  Outputs 50
  Patterns 151
End

Module 17 sc17
  Inputs 17
  Outputs 30
  Patterns 133
End

Module 18 sc18
  Inputs 18
  Outputs 20
  ScanChains 37
  Patterns 178
End

Module 19 sc19
  Inputs 28
  Outputs 30
  ScanChains 2x46
  Patterns 106
End

Module 20 sc20
  Inputs 54
  Outputs 53
  Patterns 170
End

Module 21 sc21
  Inputs 18
  Outputs 51
  ScanChains 80
  Patterns 144
End

Module 22 sc22
  Inputs 32
  Outputs 16
  ScanChains 79
  Patterns 256
End

Module 23 sc23
  Inputs 32
  Outputs 24
  ScanChains 72
  Patterns 262
End

Module 24 sc24
  Inputs 46
  Outputs 29
  ScanChains 2x78
  Patterns 257
End

Module 25 sc25
  Inputs 44
  Outputs 43
  ScanChains 2x38
  Patterns 117
End

Module 26 sc26
  Inputs 57
  Outputs 49
  ScanChains 42
  Patterns 173
End

Module 27 sc27
  Inputs 57
  Outputs 22
  Patterns 186
End

Module 28 sc28
  Inputs 41
  Outputs 38
  Patterns 161
End
)";

// Stylized 7-module SOC in the class of ITC'02's a586710: three enormous
// scan cores dominate (~450M bit volume total) — a stress test for the
// time tables and the optimizer on very unbalanced instances.
constexpr const char* kA586710 = R"(Soc a586710

Module 1 g1
  Inputs 90
  Outputs 110
  ScanChains 24x420
  Patterns 17000
End

Module 2 g2
  Inputs 120
  Outputs 80
  ScanChains 22x380
  Patterns 18000
End

Module 3 g3
  Inputs 70
  Outputs 60
  ScanChains 18x500
  Patterns 13000
End

Module 4 m4
  Inputs 150
  Outputs 140
  ScanChains 10x160
  Patterns 2800
End

Module 5 m5
  Inputs 60
  Outputs 70
  ScanChains 6x120
  Patterns 4200
End

Module 6 s6
  Inputs 40
  Outputs 50
  ScanChains 3x90
  Patterns 3500
End

Module 7 s7
  Inputs 30
  Outputs 30
  Patterns 8000
End
)";

// Tiny 5-core SOC in the spirit of the paper's Fig. 3 example. Small enough
// that unit tests can enumerate schedules exhaustively.
constexpr const char* kMini5 = R"(Soc mini5

Module 1 alpha
  Inputs 8
  Outputs 10
  ScanChains 2x20
  Patterns 40
End

Module 2 beta
  Inputs 6
  Outputs 8
  ScanChains 1x30
  Patterns 25
End

Module 3 gamma
  Inputs 12
  Outputs 12
  ScanChains 3x16
  Patterns 30
End

Module 4 delta
  Inputs 10
  Outputs 14
  ScanChains 2x24
  Patterns 35
End

Module 5 epsilon
  Inputs 4
  Outputs 6
  Patterns 50
End
)";

struct NamedBenchmark {
  const char* name;
  const char* text;
};

constexpr NamedBenchmark kBenchmarks[] = {
    {"d695", kD695},
    {"p34392", kP34392},
    {"p93791", kP93791},
    {"p22810", kP22810},
    {"a586710", kA586710},
    {"mini5", kMini5},
};

}  // namespace

std::vector<std::string> benchmark_names() {
  std::vector<std::string> names;
  for (const auto& b : kBenchmarks) names.emplace_back(b.name);
  return names;
}

Soc load_benchmark(const std::string& name) {
  for (const auto& b : kBenchmarks) {
    if (name == b.name) return parse_soc(b.text);
  }
  throw std::out_of_range("unknown benchmark SOC: " + name);
}

}  // namespace sitam
