// ITC'02-style SOC description.
//
// A Soc is a flat collection of wrapped modules (embedded cores). Each module
// carries the test-set parameters the DAC'07 optimization consumes: terminal
// counts, internal scan-chain lengths and the InTest pattern count. Hierarchy
// in the original ITC'02 files is flattened, matching the paper ("without
// loss of generality, we do not consider hierarchy").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sitam {

/// One embedded core (or wrapped user-defined logic block).
struct Module {
  int id = 0;               ///< 1-based id, unique within the SOC.
  std::string name;         ///< Human-readable name (e.g. "s38417").
  int inputs = 0;           ///< Functional input terminals.
  int outputs = 0;          ///< Functional output terminals.
  int bidirs = 0;           ///< Bidirectional terminals.
  std::vector<int> scan_chains;  ///< Internal scan-chain lengths.
  std::int64_t patterns = 0;     ///< External (scan) InTest pattern count.
  /// At-speed BIST cycles (ITC'02 tests with ScanUse no): applied through
  /// the same wrapper session but without TAM shifting, so they add a
  /// width-independent term to the core's InTest time.
  std::int64_t bist_patterns = 0;

  /// Wrapper input cells: one per input + one per bidir.
  [[nodiscard]] int wic() const { return inputs + bidirs; }
  /// Wrapper output cells: one per output + one per bidir.
  [[nodiscard]] int woc() const { return outputs + bidirs; }
  /// Total wrapper boundary cells.
  [[nodiscard]] int boundary_cells() const { return wic() + woc(); }
  /// Total internal scan flip-flops.
  [[nodiscard]] std::int64_t scan_flops() const;
  /// Longest internal scan chain (0 if combinational).
  [[nodiscard]] int max_scan_chain() const;
  /// Scan-in/out bit volume of one InTest pattern on a 1-bit TAM.
  [[nodiscard]] std::int64_t test_data_volume() const {
    return (scan_flops() + boundary_cells()) * patterns;
  }
};

/// A system chip: a named set of wrapped modules.
struct Soc {
  std::string name;
  std::vector<Module> modules;

  [[nodiscard]] int core_count() const {
    return static_cast<int>(modules.size());
  }
  /// Module lookup by 1-based id; throws std::out_of_range if absent.
  [[nodiscard]] const Module& module_by_id(int id) const;
  /// Sum of woc() over all modules — the full SI pattern length (bits).
  [[nodiscard]] std::int64_t total_woc() const;
  [[nodiscard]] std::int64_t total_wic() const;
  /// Total InTest data volume (serial, 1-bit TAM).
  [[nodiscard]] std::int64_t total_test_data_volume() const;
};

/// Structural validation; throws std::invalid_argument with a precise
/// message on the first violated constraint (duplicate ids, negative
/// counts, empty name, zero-length scan chains, ...).
void validate(const Soc& soc);

/// Deterministic 64-bit hash of everything the test flow reads from the
/// model: name, module order, per-module terminals, scan-chain lengths and
/// pattern counts. Two SOCs with equal hashes are (up to hash collision)
/// interchangeable inputs — the interning key of the SitamContext arena
/// and part of every workload/request cache key.
[[nodiscard]] std::uint64_t soc_structure_hash(const Soc& soc);

}  // namespace sitam
