// Parser for the sitam `.soc` format, a line-oriented dialect of the ITC'02
// SOC test benchmark format.
//
// Grammar (one directive per line, '#' starts a comment, blank lines ok):
//
//   Soc <name>
//   Module <id> [<name>]
//     Inputs <n>
//     Outputs <n>
//     Bidirs <n>
//     ScanChains <spec>...     # spec is either "L" or "NxL" (N chains of
//                              # length L); directive may repeat / be absent
//     Patterns <n>
//   End
//   ... more modules ...
//
// Unknown directives raise errors (fail fast beats silent misparse for
// benchmark data).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "soc/soc.h"

namespace sitam {

/// Parses a SOC description from text. Throws SocParseError (derived from
/// std::runtime_error) with a line number on any syntax or semantic problem;
/// the result always passes validate().
[[nodiscard]] Soc parse_soc(std::string_view text);

/// Reads and parses a `.soc` file; throws std::runtime_error when the file
/// cannot be read.
[[nodiscard]] Soc load_soc_file(const std::string& path);

class SocParseError : public std::runtime_error {
 public:
  SocParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

}  // namespace sitam
