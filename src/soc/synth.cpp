#include "soc/synth.h"

#include <stdexcept>

namespace sitam {

namespace {

int draw(Rng& rng, int lo, int hi) {
  if (lo > hi) {
    throw std::invalid_argument("generate_soc: inverted range [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "]");
  }
  return static_cast<int>(rng.uniform(static_cast<std::uint64_t>(lo),
                                      static_cast<std::uint64_t>(hi)));
}

}  // namespace

Soc generate_soc(const SynthSocConfig& config, Rng& rng) {
  if (config.cores <= 0) {
    throw std::invalid_argument("generate_soc: cores must be positive");
  }
  if (config.large_fraction < 0.0 || config.large_fraction > 1.0) {
    throw std::invalid_argument(
        "generate_soc: large_fraction outside [0, 1]");
  }

  Soc soc;
  soc.name = config.name;
  const int large_count = static_cast<int>(
      config.large_fraction * config.cores + 0.5);

  for (int id = 1; id <= config.cores; ++id) {
    Module m;
    m.id = id;
    m.inputs = draw(rng, config.terminals_min, config.terminals_max);
    m.outputs = draw(rng, config.terminals_min, config.terminals_max);

    if (id <= large_count) {
      m.name = "big" + std::to_string(id);
      const int chains =
          draw(rng, config.large_chains_min, config.large_chains_max);
      for (int c = 0; c < chains; ++c) {
        m.scan_chains.push_back(
            draw(rng, config.large_length_min, config.large_length_max));
      }
      m.patterns =
          draw(rng, config.large_patterns_min, config.large_patterns_max);
    } else if (id <= large_count + (config.cores - large_count) / 2) {
      m.name = "mid" + std::to_string(id);
      const int chains =
          draw(rng, config.mid_chains_min, config.mid_chains_max);
      for (int c = 0; c < chains; ++c) {
        m.scan_chains.push_back(
            draw(rng, config.mid_length_min, config.mid_length_max));
      }
      m.patterns =
          draw(rng, config.mid_patterns_min, config.mid_patterns_max);
    } else {
      m.name = "small" + std::to_string(id);
      // Small blocks: combinational or a single short chain.
      if (rng.chance(0.5)) {
        m.scan_chains.push_back(
            draw(rng, config.mid_length_min, config.mid_length_max) / 2 + 1);
      }
      m.patterns =
          draw(rng, config.small_patterns_min, config.small_patterns_max);
    }
    soc.modules.push_back(std::move(m));
  }
  validate(soc);
  return soc;
}

}  // namespace sitam
