// Parameterized random SOC generator.
//
// Produces ITC'02-style SOCs with a controllable size profile: a few large
// scan-heavy cores, a body of mid-size cores and a tail of small/
// combinational blocks — the shape shared by the industrial ITC'02
// benchmarks. Used by property tests, scaling studies and as a starting
// point for users modelling their own designs.
#pragma once

#include <cstdint>
#include <string>

#include "soc/soc.h"
#include "util/rng.h"

namespace sitam {

struct SynthSocConfig {
  std::string name = "synth";
  int cores = 16;
  /// Fraction of cores that are large (scan-heavy); the rest split evenly
  /// between mid-size scanned cores and small/combinational blocks.
  double large_fraction = 0.2;
  /// Scan-chain count ranges per class.
  int large_chains_min = 16;
  int large_chains_max = 46;
  int mid_chains_min = 2;
  int mid_chains_max = 12;
  /// Scan-chain length ranges per class.
  int large_length_min = 150;
  int large_length_max = 520;
  int mid_length_min = 40;
  int mid_length_max = 160;
  /// Terminal count range (inputs and outputs drawn independently).
  int terminals_min = 16;
  int terminals_max = 220;
  /// InTest pattern count ranges.
  int large_patterns_min = 150;
  int large_patterns_max = 500;
  int mid_patterns_min = 80;
  int mid_patterns_max = 300;
  int small_patterns_min = 20;
  int small_patterns_max = 120;
};

/// Generates a SOC; the result always passes validate(). Deterministic for
/// a given Rng state. Throws std::invalid_argument for non-positive core
/// counts or inverted ranges.
[[nodiscard]] Soc generate_soc(const SynthSocConfig& config, Rng& rng);

}  // namespace sitam
