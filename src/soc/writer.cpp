#include "soc/writer.h"

#include <fstream>
#include <sstream>

namespace sitam {

std::string soc_to_text(const Soc& soc) {
  std::ostringstream os;
  os << "Soc " << soc.name << "\n";
  for (const Module& m : soc.modules) {
    os << "\nModule " << m.id << ' ' << m.name << "\n";
    os << "  Inputs " << m.inputs << "\n";
    os << "  Outputs " << m.outputs << "\n";
    if (m.bidirs != 0) os << "  Bidirs " << m.bidirs << "\n";
    if (!m.scan_chains.empty()) {
      os << "  ScanChains";
      std::size_t i = 0;
      while (i < m.scan_chains.size()) {
        std::size_t j = i;
        while (j < m.scan_chains.size() &&
               m.scan_chains[j] == m.scan_chains[i]) {
          ++j;
        }
        const std::size_t run = j - i;
        if (run > 1) {
          os << ' ' << run << 'x' << m.scan_chains[i];
        } else {
          os << ' ' << m.scan_chains[i];
        }
        i = j;
      }
      os << "\n";
    }
    os << "  Patterns " << m.patterns << "\n";
    if (m.bist_patterns != 0) {
      os << "  BistPatterns " << m.bist_patterns << "\n";
    }
    os << "End\n";
  }
  return os.str();
}

void save_soc_file(const Soc& soc, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write SOC file: " + path);
  out << soc_to_text(soc);
  if (!out) throw std::runtime_error("write failed for SOC file: " + path);
}

}  // namespace sitam
