// Embedded ITC'02-style benchmark SOCs.
//
// The DAC'07 paper evaluates on the ITC'02 SOC test benchmarks p34392 and
// p93791. The original `.soc` files are not redistributable inside this
// repository, so we embed reconstructions (see DESIGN.md §3):
//
//  * "d695"   — close reconstruction of the well-documented academic SOC
//               (10 ISCAS-85/89 cores); used mainly by tests and examples.
//  * "p34392" — synthetic 19-module SOC calibrated so TR-Architect InTest
//               times match the published magnitudes (dominated by one large
//               core, time plateau for W >= 32).
//  * "p93791" — synthetic 32-module SOC calibrated against the published
//               TR-Architect numbers (scales smoothly up to W = 64).
//  * "mini5"  — tiny 5-core SOC matching the structure of the paper's
//               Fig. 3 example; fast unit-test fodder.
#pragma once

#include <string>
#include <vector>

#include "soc/soc.h"

namespace sitam {

/// Names of all embedded benchmarks, in a stable order.
[[nodiscard]] std::vector<std::string> benchmark_names();

/// Loads an embedded benchmark by name; throws std::out_of_range for an
/// unknown name. The returned SOC always passes validate().
[[nodiscard]] Soc load_benchmark(const std::string& name);

}  // namespace sitam
