#include "interconnect/topology.h"

#include <algorithm>
#include <stdexcept>

namespace sitam {

std::vector<int> Topology::neighbors(int victim_net, int k) const {
  if (victim_net < 0 || victim_net >= static_cast<int>(nets.size())) {
    throw std::out_of_range("Topology::neighbors: bad net id " +
                            std::to_string(victim_net));
  }
  if (k < 0) throw std::invalid_argument("Topology::neighbors: k < 0");
  std::vector<int> out;
  const int lo = std::max(0, victim_net - k);
  const int hi = std::min(static_cast<int>(nets.size()) - 1, victim_net + k);
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (int i = lo; i <= hi; ++i) {
    if (i != victim_net) out.push_back(i);
  }
  return out;
}

Topology generate_topology(const TerminalSpace& terminals,
                           const TopologyConfig& config, Rng& rng) {
  const int cores = terminals.core_count();
  if (cores < 2) {
    throw std::invalid_argument(
        "generate_topology: need at least 2 cores for core-external nets");
  }
  if (config.fanout <= 0 || config.wires_per_link <= 0) {
    throw std::invalid_argument("generate_topology: bad fanout/wire config");
  }

  Topology topo;
  for (int sender = 0; sender < cores; ++sender) {
    // Each core sends to round(fanout) distinct other cores (at least one).
    const int links = std::max(
        1, std::min(cores - 1, static_cast<int>(config.fanout + 0.5)));
    auto receiver_picks =
        rng.sample_indices(static_cast<std::size_t>(cores - 1),
                           static_cast<std::size_t>(links));
    for (const std::size_t pick : receiver_picks) {
      // Map [0, cores-1) onto cores != sender.
      const int receiver =
          static_cast<int>(pick) + (static_cast<int>(pick) >= sender ? 1 : 0);
      const int woc = terminals.woc(sender);
      const int wires = std::min(config.wires_per_link, woc);
      for (int wire = 0; wire < wires; ++wire) {
        Net net;
        net.driver_terminal = terminals.terminal(
            sender, static_cast<int>(rng.below(
                        static_cast<std::uint64_t>(woc))));
        net.receiver_core = receiver;
        topo.nets.push_back(net);
      }
    }
  }

  // Random routing order: coupling neighborhoods cross core boundaries,
  // which is exactly the "arbitrary SOC interconnect topology" of Fig. 1.
  rng.shuffle(topo.nets);
  for (std::size_t i = 0; i < topo.nets.size(); ++i) {
    topo.nets[i].id = static_cast<int>(i);
  }

  if (config.with_bus) {
    Bus bus;
    bus.width = config.bus_width;
    for (int c = 0; c < cores; ++c) bus.connected_cores.push_back(c);
    topo.bus = std::move(bus);
  }
  return topo;
}

}  // namespace sitam
