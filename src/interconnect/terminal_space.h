// Global addressing of core output terminals.
//
// SI test patterns assign values to *driver-side* terminals: the wrapper
// output cells (WOCs) of the embedded cores. TerminalSpace flattens all WOCs
// of a SOC into one contiguous id range so patterns can be stored sparsely
// as (terminal id, value) pairs, and maps ids back to (core, bit).
#pragma once

#include <cstdint>
#include <vector>

#include "soc/soc.h"

namespace sitam {

class TerminalSpace {
 public:
  explicit TerminalSpace(const Soc& soc);

  /// Total number of output terminals across all cores.
  [[nodiscard]] int total() const { return total_; }
  [[nodiscard]] int core_count() const {
    return static_cast<int>(first_.size()) - 1;
  }

  /// Core (0-based index into Soc::modules) owning terminal `t`.
  /// Throws std::out_of_range for an invalid id.
  [[nodiscard]] int core_of(int terminal) const;
  /// Bit position of `terminal` within its core's WOC list.
  [[nodiscard]] int bit_of(int terminal) const;

  /// First terminal id of `core`; terminals of the core are
  /// [first_terminal(c), first_terminal(c) + woc(c)).
  [[nodiscard]] int first_terminal(int core) const;
  /// WOC count of `core`.
  [[nodiscard]] int woc(int core) const;

  /// Global id for (core, bit); throws std::out_of_range on bad input.
  [[nodiscard]] int terminal(int core, int bit) const;

 private:
  std::vector<int> first_;  // prefix sums; size core_count()+1
  int total_ = 0;
};

}  // namespace sitam
