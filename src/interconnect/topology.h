// Core-external interconnect topology.
//
// The ITC'02 benchmarks carry no functional net-lists (which is why the
// DAC'07 paper generates random SI patterns), but the MA/MT fault-model
// generators and the Fig. 1 style demos need an explicit topology: nets
// (driver terminal -> receiver core) laid out in a routing order, plus an
// optional shared functional bus. Physical neighborhood is modeled by the
// routing order: the aggressors of a victim net are the nets within a
// locality window around it, matching the "locality factor k" of the
// reduced-MT fault model.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "interconnect/terminal_space.h"
#include "util/rng.h"

namespace sitam {

/// One point-to-point core-external interconnect.
struct Net {
  int id = 0;             ///< Index into Topology::nets == routing position.
  int driver_terminal = 0;  ///< Global WOC terminal id (TerminalSpace).
  int receiver_core = 0;    ///< 0-based core index of the receiving core.
};

/// A shared functional bus: every connected core can drive any line.
struct Bus {
  int width = 32;
  std::vector<int> connected_cores;  ///< 0-based core indices.
};

struct Topology {
  std::vector<Net> nets;   ///< In routing order; neighbors are SI-coupled.
  std::optional<Bus> bus;

  /// Nets within the locality window of `victim_net` (±k routing slots,
  /// excluding the victim itself). Window is clipped at the ends.
  [[nodiscard]] std::vector<int> neighbors(int victim_net, int k) const;
};

struct TopologyConfig {
  /// Average number of cores each core sends data to (out-degree).
  double fanout = 2.0;
  /// Every (sender, receiver) pair is connected by this many wires.
  int wires_per_link = 32;
  /// Attach a shared bus connecting all cores?
  bool with_bus = true;
  int bus_width = 32;
};

/// Random Fig.1-style topology: each core sends `fanout` links (each
/// `wires_per_link` nets) to distinct other cores; nets are shuffled into a
/// random routing order. Deterministic given the Rng state.
/// Throws std::invalid_argument for SOCs with fewer than 2 cores.
[[nodiscard]] Topology generate_topology(const TerminalSpace& terminals,
                                         const TopologyConfig& config,
                                         Rng& rng);

}  // namespace sitam
