#include "interconnect/terminal_space.h"

#include <algorithm>
#include <stdexcept>

namespace sitam {

TerminalSpace::TerminalSpace(const Soc& soc) {
  first_.reserve(soc.modules.size() + 1);
  first_.push_back(0);
  for (const Module& m : soc.modules) {
    first_.push_back(first_.back() + m.woc());
  }
  total_ = first_.back();
}

int TerminalSpace::core_of(int terminal) const {
  if (terminal < 0 || terminal >= total_) {
    throw std::out_of_range("TerminalSpace::core_of: bad terminal id " +
                            std::to_string(terminal));
  }
  // first_ is sorted; find the core whose range contains `terminal`.
  const auto it = std::upper_bound(first_.begin(), first_.end(), terminal);
  return static_cast<int>(std::distance(first_.begin(), it)) - 1;
}

int TerminalSpace::bit_of(int terminal) const {
  const int core = core_of(terminal);
  return terminal - first_[static_cast<std::size_t>(core)];
}

int TerminalSpace::first_terminal(int core) const {
  if (core < 0 || core >= core_count()) {
    throw std::out_of_range("TerminalSpace::first_terminal: bad core " +
                            std::to_string(core));
  }
  return first_[static_cast<std::size_t>(core)];
}

int TerminalSpace::woc(int core) const {
  if (core < 0 || core >= core_count()) {
    throw std::out_of_range("TerminalSpace::woc: bad core " +
                            std::to_string(core));
  }
  return first_[static_cast<std::size_t>(core) + 1] -
         first_[static_cast<std::size_t>(core)];
}

int TerminalSpace::terminal(int core, int bit) const {
  if (bit < 0 || bit >= woc(core)) {
    throw std::out_of_range("TerminalSpace::terminal: bad bit " +
                            std::to_string(bit) + " for core " +
                            std::to_string(core));
  }
  return first_[static_cast<std::size_t>(core)] + bit;
}

}  // namespace sitam
