// StoreRecord: the one-line JSON envelope the persistent result store
// appends per completed run — the RunManifest (which binary / commit /
// seed / threads), a scenario key naming the cell of the experiment grid,
// a config hash identifying every result-affecting knob, a digest of the
// result payload, and a flat metric map (t_soc, seconds, hit rates, ...).
//
// Records are schema-versioned: a reader rejects records whose "schema"
// it does not understand instead of mis-parsing them. The identity of a
// record inside the store index is StoreKey — (scenario, config_hash,
// git_describe) — so a sweep re-run at the same commit with the same
// config finds its cell and skips it, while a new commit re-runs the
// whole grid (that per-commit history is exactly what `sitam report`
// charts). See docs/RESULT_STORE.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <tuple>

#include "obs/manifest.h"

namespace sitam {
class JsonWriter;
class JsonValue;
}  // namespace sitam

namespace sitam::store {

/// Current record schema. Bump when a field changes meaning; readers skip
/// records with an unknown schema (counted, never mis-parsed).
inline constexpr int kStoreSchemaVersion = 1;

/// FNV-1a 64-bit over `text`, rendered as 16 lowercase hex digits — the
/// store's canonical hash for config identities and result digests.
[[nodiscard]] std::string store_hash_hex(std::string_view text);

/// Reconstructs a RunManifest from the object RunManifest::write emits
/// (the shape every BENCH_*.json and metrics file embeds). Unknown fields
/// are ignored so adding a provenance hint does not orphan old records.
/// Throws std::invalid_argument when `value` is not an object.
[[nodiscard]] obs::RunManifest parse_run_manifest(const JsonValue& value);

/// Index identity of a record: one cell of one configuration at one
/// commit. Ordered so it can key a std::map deterministically.
struct StoreKey {
  std::string scenario;
  std::string config_hash;
  std::string git_describe;

  [[nodiscard]] bool operator<(const StoreKey& other) const {
    return std::tie(scenario, config_hash, git_describe) <
           std::tie(other.scenario, other.config_hash, other.git_describe);
  }
  [[nodiscard]] bool operator==(const StoreKey& other) const {
    return scenario == other.scenario && config_hash == other.config_hash &&
           git_describe == other.git_describe;
  }
};

/// One store record. `metrics` is a flat name -> number map (std::map so
/// serialization order is deterministic); everything a dashboard charts
/// goes here, everything that identifies the run goes in the key fields.
struct StoreRecord {
  int schema = kStoreSchemaVersion;
  obs::RunManifest manifest;
  std::string scenario;      ///< Grid-cell key, e.g. "p93791/w32/nr10000".
  std::string config_hash;   ///< store_hash_hex of the canonical config.
  std::string result_digest; ///< store_hash_hex of the result payload.
  std::map<std::string, double> metrics;

  [[nodiscard]] StoreKey key() const {
    return StoreKey{scenario, config_hash, manifest.git_describe};
  }

  /// Writes the record as one JSON object into `json`.
  void write(JsonWriter& json) const;

  /// The record as a single line of JSON (no trailing newline) — the
  /// exact bytes ResultStore appends.
  [[nodiscard]] std::string to_line() const;

  /// Parses one record from a line previously produced by to_line().
  /// Throws JsonParseError on malformed JSON and std::invalid_argument on
  /// schema violations (wrong/unknown "schema", missing fields, non-string
  /// keys, non-numeric metrics).
  [[nodiscard]] static StoreRecord parse(std::string_view line);

  /// Same, from an already-parsed document.
  [[nodiscard]] static StoreRecord from_json(const JsonValue& root);
};

}  // namespace sitam::store
