#include "store/import.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace sitam::store {

void flatten_numeric_metrics(const JsonValue& value, const std::string& prefix,
                             std::map<std::string, double>& metrics) {
  switch (value.kind()) {
    case JsonValue::Kind::kNumber:
      metrics[prefix] = value.as_double();
      break;
    case JsonValue::Kind::kBool:
      metrics[prefix] = value.as_bool() ? 1.0 : 0.0;
      break;
    case JsonValue::Kind::kObject:
      for (const JsonValue::Member& member : value.as_object()) {
        flatten_numeric_metrics(member.second,
                                prefix.empty()
                                    ? member.first
                                    : prefix + "." + member.first,
                                metrics);
      }
      break;
    case JsonValue::Kind::kArray: {
      const auto& items = value.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        flatten_numeric_metrics(items[i], prefix + "." + std::to_string(i),
                                metrics);
      }
      break;
    }
    case JsonValue::Kind::kNull:
    case JsonValue::Kind::kString:
      break;  // Identity lives in the manifest, not the metric map.
  }
}

namespace {

/// Canonical config identity of an imported document: the manifest fields
/// that distinguish one configuration of one program from another.
std::string manifest_config_text(const obs::RunManifest& manifest) {
  std::ostringstream os;
  os << "program=" << manifest.program << ";seed=" << manifest.seed
     << ";threads=" << manifest.threads;
  for (const auto& [key, value] : manifest.extra) {
    os << ';' << key << '=' << value;
  }
  return os.str();
}

}  // namespace

StoreRecord import_result_document(const std::string& text,
                                   const std::string& source_name) {
  const JsonValue root = parse_json(text);
  if (!root.is_object()) {
    throw std::invalid_argument(source_name +
                                ": result document must be a JSON object");
  }
  const JsonValue* manifest_value = root.find("manifest");
  if (manifest_value == nullptr || !manifest_value->is_object()) {
    throw std::invalid_argument(
        source_name + ": result document has no 'manifest' object");
  }

  StoreRecord record;
  record.manifest = parse_run_manifest(*manifest_value);
  record.scenario = !record.manifest.scenario.empty()
                        ? record.manifest.scenario
                        : (!record.manifest.program.empty()
                               ? record.manifest.program
                               : source_name);
  for (const JsonValue::Member& member : root.as_object()) {
    if (member.first == "manifest") continue;
    flatten_numeric_metrics(member.second, member.first, record.metrics);
  }
  record.config_hash = store_hash_hex(manifest_config_text(record.manifest));
  record.result_digest = store_hash_hex(text);
  return record;
}

StoreRecord import_result_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read result document '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  // Scenario fallback: the file stem ("BENCH_delta.json" -> "BENCH_delta").
  std::string stem = path;
  const std::size_t slash = stem.find_last_of("/\\");
  if (slash != std::string::npos) stem.erase(0, slash + 1);
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem.erase(dot);
  return import_result_document(text.str(), stem);
}

}  // namespace sitam::store
