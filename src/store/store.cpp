#include "store/store.h"

#include <cerrno>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "util/log.h"

namespace sitam::store {

namespace {

constexpr const char* kSidecarMagic = "sitam-store-index v1";

/// Sidecar entries are rewritten every this many appends (and on flush /
/// destruction); between rewrites the sidecar is merely stale, which the
/// next open detects by its byte cover and repairs with a scan.
constexpr std::int64_t kSidecarFlushInterval = 64;

/// The sidecar is tab-separated; a key field carrying a tab or newline
/// would corrupt it (and a newline would corrupt the JSONL framing story
/// for humans reading it).
void validate_sidecar_safe(const std::string& value, const char* field) {
  if (value.find('\t') != std::string::npos ||
      value.find('\n') != std::string::npos ||
      value.find('\r') != std::string::npos) {
    throw std::invalid_argument(std::string("store record field '") + field +
                                "' must not contain tabs or newlines");
  }
}

std::int64_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::int64_t>(size);
}

/// Writes `text` fully, retrying on EINTR / short writes. With O_APPEND
/// the first write lands atomically at the end of file; the retry loop
/// only matters for exotic filesystems that short-write regular files.
bool write_fully(int fd, const std::string& text) {
  std::size_t done = 0;
  while (done < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + done, text.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ResultStore::ResultStore(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open result store '" + path_ +
                             "' for append");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  load_or_rebuild_index_locked();
}

ResultStore::~ResultStore() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (appends_since_flush_ > 0) flush_index_locked();
  }
  if (fd_ >= 0) ::close(fd_);
}

void ResultStore::load_or_rebuild_index_locked() {
  const std::int64_t store_bytes = file_size_or_zero(path_);
  if (store_bytes > 0) {
    std::ifstream tail(path_, std::ios::binary);
    tail.seekg(store_bytes - 1);
    char last = '\n';
    if (tail.get(last)) needs_leading_newline_ = last != '\n';
  }

  // Try the sidecar: valid only when it covers the file byte-for-byte.
  std::ifstream sidecar(index_path_for(path_));
  if (sidecar) {
    std::string magic;
    std::string bytes_line;
    if (std::getline(sidecar, magic) && magic == kSidecarMagic &&
        std::getline(sidecar, bytes_line) &&
        bytes_line.rfind("bytes ", 0) == 0) {
      std::int64_t covered = -1;
      try {
        covered = std::stoll(bytes_line.substr(6));
      } catch (const std::exception&) {
        covered = -1;
      }
      if (covered == store_bytes) {
        StoreIndex loaded;
        std::int64_t records = 0;
        std::string line;
        bool ok = true;
        while (std::getline(sidecar, line)) {
          if (line.empty()) continue;
          std::istringstream fields(line);
          StoreKey key;
          std::string count_text;
          if (!std::getline(fields, key.scenario, '\t') ||
              !std::getline(fields, key.config_hash, '\t') ||
              !std::getline(fields, key.git_describe, '\t') ||
              !std::getline(fields, count_text)) {
            ok = false;
            break;
          }
          std::int64_t n = 0;
          try {
            n = std::stoll(count_text);
          } catch (const std::exception&) {
            ok = false;
            break;
          }
          for (std::int64_t i = 0; i < n; ++i) loaded.add(key);
          records += n;
        }
        if (ok) {
          index_ = std::move(loaded);
          open_stats_.records = records;
          open_stats_.skipped_lines = 0;
          open_stats_.index_from_sidecar = true;
          return;
        }
      }
    }
  }

  // Sidecar missing, stale, or corrupt: rebuild from the JSONL.
  index_.clear();
  std::int64_t skipped = 0;
  const std::vector<StoreRecord> records = read_all(path_, &skipped);
  for (const StoreRecord& record : records) index_.add(record.key());
  open_stats_.records = static_cast<std::int64_t>(records.size());
  open_stats_.skipped_lines = skipped;
  open_stats_.index_from_sidecar = false;
  flush_index_locked();
}

bool ResultStore::append(const StoreRecord& record) {
  validate_sidecar_safe(record.scenario, "scenario");
  validate_sidecar_safe(record.config_hash, "config_hash");
  validate_sidecar_safe(record.manifest.git_describe,
                        "manifest.git_describe");
  const std::string line = record.to_line();

  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return false;
  std::string buffer;
  buffer.reserve(line.size() + 2);
  // Isolate a torn tail left by a crashed writer: starting this append on
  // a fresh line turns the torn bytes into one unparseable line readers
  // skip, without ever truncating data another process may be appending.
  if (needs_leading_newline_) buffer += '\n';
  buffer += line;
  buffer += '\n';
  if (!write_fully(fd_, buffer)) {
    SITAM_WARN << "result store append to " << path_ << " failed";
    return false;
  }
  needs_leading_newline_ = false;
  index_.add(record.key());
  ++appended_;
  ++appends_since_flush_;
  if (appends_since_flush_ >= kSidecarFlushInterval) flush_index_locked();
  return true;
}

bool ResultStore::contains(const StoreKey& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.contains(key);
}

std::int64_t ResultStore::count(const StoreKey& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.count(key);
}

StoreIndex ResultStore::index_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_;
}

StoreOpenStats ResultStore::open_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return open_stats_;
}

std::int64_t ResultStore::records_appended() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

bool ResultStore::flush_index() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return flush_index_locked();
}

bool ResultStore::flush_index_locked() {
  // The recorded byte cover must never exceed what the index has seen, so
  // measure the file *before* serializing (another process may append in
  // between; the sidecar then reads as stale and the next open rescans —
  // the safe direction).
  const std::int64_t store_bytes = file_size_or_zero(path_);
  const std::string sidecar_path = index_path_for(path_);
  const std::string tmp_path = sidecar_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    out << kSidecarMagic << '\n' << "bytes " << store_bytes << '\n';
    for (const auto& [key, n] : index_.entries()) {
      out << key.scenario << '\t' << key.config_hash << '\t'
          << key.git_describe << '\t' << n << '\n';
    }
    if (!out) {
      SITAM_WARN << "cannot write store index sidecar " << tmp_path;
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, sidecar_path, ec);
  if (ec) {
    SITAM_WARN << "cannot move store index sidecar into place: "
               << ec.message();
    return false;
  }
  appends_since_flush_ = 0;
  return true;
}

std::vector<StoreRecord> ResultStore::read_all(const std::string& path,
                                               std::int64_t* skipped_lines) {
  std::vector<StoreRecord> records;
  std::int64_t skipped = 0;
  std::ifstream in(path, std::ios::binary);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      records.push_back(StoreRecord::parse(line));
    } catch (const std::exception&) {
      // Torn tail from a crashed append, or a foreign/newer schema:
      // counted and skipped, never fatal — the store stays readable.
      ++skipped;
    }
  }
  if (skipped_lines != nullptr) *skipped_lines = skipped;
  return records;
}

std::string ResultStore::index_path_for(const std::string& path) {
  return path + ".idx";
}

}  // namespace sitam::store
