#include "store/record.h"

#include <cstdint>
#include <stdexcept>

#include "util/json.h"

namespace sitam::store {

obs::RunManifest parse_run_manifest(const JsonValue& value) {
  if (!value.is_object()) {
    throw std::invalid_argument("record 'manifest' must be an object");
  }
  obs::RunManifest manifest;
  for (const JsonValue::Member& member : value.as_object()) {
    const std::string& field = member.first;
    const JsonValue& v = member.second;
    if (field == "program") {
      manifest.program = v.as_string();
    } else if (field == "scenario") {
      manifest.scenario = v.as_string();
    } else if (field == "seed") {
      manifest.seed = static_cast<std::uint64_t>(v.as_int());
    } else if (field == "threads") {
      manifest.threads = static_cast<int>(v.as_int());
    } else if (field == "build_type") {
      manifest.build_type = v.as_string();
    } else if (field == "sanitizer") {
      manifest.sanitizer = v.as_string();
    } else if (field == "git_describe") {
      manifest.git_describe = v.as_string();
    } else if (field == "hardware_threads") {
      manifest.hardware_threads = static_cast<int>(v.as_int());
    } else if (field == "config") {
      for (const JsonValue::Member& extra : v.as_object()) {
        manifest.add_extra(extra.first, extra.second.as_string());
      }
    }
  }
  return manifest;
}

std::string store_hash_hex(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = "0123456789abcdef"[hash & 0xF];
    hash >>= 4;
  }
  return hex;
}

void StoreRecord::write(JsonWriter& json) const {
  json.begin_object();
  json.kv("schema", schema);
  json.key("manifest");
  manifest.write(json);
  json.kv("scenario", scenario);
  json.kv("config_hash", config_hash);
  json.kv("result_digest", result_digest);
  json.key("metrics").begin_object();
  for (const auto& [name, value] : metrics) json.kv(name, value);
  json.end_object();
  json.end_object();
}

std::string StoreRecord::to_line() const {
  JsonWriter json;
  write(json);
  return json.str();
}

StoreRecord StoreRecord::parse(std::string_view line) {
  return from_json(parse_json(line));
}

StoreRecord StoreRecord::from_json(const JsonValue& root) {
  if (!root.is_object()) {
    throw std::invalid_argument("store record must be a JSON object");
  }
  StoreRecord record;
  bool saw_schema = false;
  bool saw_manifest = false;
  for (const JsonValue::Member& member : root.as_object()) {
    const std::string& field = member.first;
    const JsonValue& value = member.second;
    if (field == "schema") {
      if (!value.is_integer() || value.as_int() != kStoreSchemaVersion) {
        throw std::invalid_argument("unsupported store record schema");
      }
      record.schema = static_cast<int>(value.as_int());
      saw_schema = true;
    } else if (field == "manifest") {
      record.manifest = parse_run_manifest(value);
      saw_manifest = true;
    } else if (field == "scenario") {
      record.scenario = value.as_string();
    } else if (field == "config_hash") {
      record.config_hash = value.as_string();
    } else if (field == "result_digest") {
      record.result_digest = value.as_string();
    } else if (field == "metrics") {
      for (const JsonValue::Member& metric : value.as_object()) {
        if (!metric.second.is_number()) {
          throw std::invalid_argument("store metric '" + metric.first +
                                      "' must be a number");
        }
        record.metrics[metric.first] = metric.second.as_double();
      }
    } else {
      throw std::invalid_argument("unknown store record field '" + field +
                                  "'");
    }
  }
  if (!saw_schema) {
    throw std::invalid_argument("store record is missing 'schema'");
  }
  if (!saw_manifest) {
    throw std::invalid_argument("store record is missing 'manifest'");
  }
  if (record.scenario.empty()) {
    throw std::invalid_argument("store record is missing 'scenario'");
  }
  if (record.config_hash.empty()) {
    throw std::invalid_argument("store record is missing 'config_hash'");
  }
  return record;
}

}  // namespace sitam::store
