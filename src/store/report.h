// Regression dashboard over a result store: per-scenario, per-commit
// metric trends rendered as Markdown (for humans and CI artifacts) and
// JSON (for tooling). The input is simply every record read from a store
// — `sitam report` wires ResultStore::read_all into build().
//
// Grouping: records with the same (scenario, git_describe, config_hash)
// collapse into one row (the latest record wins per metric, which matches
// append order = run order); rows are listed in first-append order per
// scenario, so the table reads top-to-bottom as commit history. A row's
// identity fields come verbatim from the embedded RunManifest — the
// report never synthesizes provenance.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "store/record.h"

namespace sitam {
class JsonWriter;
}  // namespace sitam

namespace sitam::store {

struct DashboardOptions {
  /// Substring filters on the scenario key; empty = every scenario.
  std::vector<std::string> scenario_filters;
  /// Metrics promoted to Markdown table columns (when present in the
  /// scenario); every metric is always in the JSON document.
  std::vector<std::string> highlight = {
      "t_soc",    "seconds",        "speedup",        "memo_hit_rate",
      "delta_hit_rate", "cache_hit_rate", "compaction_ratio",
  };
};

/// One (commit, config) row of a scenario's trend.
struct CommitRow {
  std::string git_describe;
  std::string program;
  std::string build_type;
  std::string config_hash;
  std::int64_t record_count = 0;  ///< Records collapsed into this row.
  std::map<std::string, double> metrics;  ///< Latest value per metric.
};

struct ScenarioTrend {
  std::string scenario;
  std::vector<CommitRow> rows;  ///< First-append order (= run order).
};

struct Dashboard {
  std::vector<ScenarioTrend> scenarios;  ///< Sorted by scenario key.
  std::int64_t records = 0;  ///< Records that entered the dashboard.

  /// Builds the dashboard from records in append order.
  [[nodiscard]] static Dashboard build(
      const std::vector<StoreRecord>& records,
      const DashboardOptions& options = {});
};

/// GitHub-flavoured Markdown: one section per scenario, one table row per
/// (commit, config), highlighted metrics as columns with a delta-vs-
/// previous-row percentage where both values exist.
[[nodiscard]] std::string render_dashboard_markdown(
    const Dashboard& dashboard, const DashboardOptions& options = {});

/// Machine-readable document: every row with its full metric map.
void write_dashboard_json(JsonWriter& json, const Dashboard& dashboard);
[[nodiscard]] std::string dashboard_json(const Dashboard& dashboard);

/// Deterministic number rendering shared by the Markdown table and tests:
/// integers print exactly, other values with six significant digits.
[[nodiscard]] std::string format_metric(double value);

}  // namespace sitam::store
