#include "store/report.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "util/json.h"

namespace sitam::store {

namespace {

bool scenario_selected(const std::string& scenario,
                       const std::vector<std::string>& filters) {
  if (filters.empty()) return true;
  for (const std::string& filter : filters) {
    if (scenario.find(filter) != std::string::npos) return true;
  }
  return false;
}

/// Percentage change new vs old, or no value when not comparable.
bool delta_pct(double previous, double current, double* out) {
  if (previous == 0.0) return false;
  *out = (current - previous) / previous * 100.0;
  return true;
}

}  // namespace

std::string format_metric(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    std::ostringstream os;
    os << static_cast<std::int64_t>(value);
    return os.str();
  }
  std::ostringstream os;
  os.precision(6);
  os << value;
  return os.str();
}

Dashboard Dashboard::build(const std::vector<StoreRecord>& records,
                           const DashboardOptions& options) {
  Dashboard dashboard;
  // scenario -> trend position; (scenario, describe, config) -> row
  // position. Plain maps keep every iteration deterministic.
  std::map<std::string, std::size_t> trend_of;
  std::map<std::tuple<std::string, std::string, std::string>, std::size_t>
      row_of;

  for (const StoreRecord& record : records) {
    if (!scenario_selected(record.scenario, options.scenario_filters)) {
      continue;
    }
    ++dashboard.records;
    const auto trend_it = trend_of.find(record.scenario);
    std::size_t trend_pos;
    if (trend_it == trend_of.end()) {
      trend_pos = dashboard.scenarios.size();
      trend_of.emplace(record.scenario, trend_pos);
      ScenarioTrend trend;
      trend.scenario = record.scenario;
      dashboard.scenarios.push_back(std::move(trend));
    } else {
      trend_pos = trend_it->second;
    }
    ScenarioTrend& trend = dashboard.scenarios[trend_pos];

    const std::tuple<std::string, std::string, std::string> row_key{
        record.scenario, record.manifest.git_describe, record.config_hash};
    const auto row_it = row_of.find(row_key);
    CommitRow* row;
    if (row_it == row_of.end()) {
      row_of.emplace(row_key, trend.rows.size());
      trend.rows.emplace_back();
      row = &trend.rows.back();
      row->git_describe = record.manifest.git_describe;
      row->program = record.manifest.program;
      row->build_type = record.manifest.build_type;
      row->config_hash = record.config_hash;
    } else {
      row = &trend.rows[row_it->second];
    }
    ++row->record_count;
    for (const auto& [name, value] : record.metrics) {
      row->metrics[name] = value;  // Latest record wins.
    }
  }

  std::sort(dashboard.scenarios.begin(), dashboard.scenarios.end(),
            [](const ScenarioTrend& a, const ScenarioTrend& b) {
              return a.scenario < b.scenario;
            });
  return dashboard;
}

std::string render_dashboard_markdown(const Dashboard& dashboard,
                                      const DashboardOptions& options) {
  std::ostringstream os;
  os << "# sitam regression dashboard\n\n"
     << dashboard.records << " record(s), " << dashboard.scenarios.size()
     << " scenario(s).\n";
  for (const ScenarioTrend& trend : dashboard.scenarios) {
    os << "\n## " << trend.scenario << "\n\n";

    // Columns: the highlighted metrics this scenario actually carries.
    std::vector<std::string> columns;
    for (const std::string& metric : options.highlight) {
      for (const CommitRow& row : trend.rows) {
        if (row.metrics.find(metric) != row.metrics.end()) {
          columns.push_back(metric);
          break;
        }
      }
    }

    os << "| commit | program | config | runs |";
    for (const std::string& column : columns) os << ' ' << column << " |";
    os << "\n|---|---|---|---|";
    for (std::size_t i = 0; i < columns.size(); ++i) os << "---|";
    os << '\n';

    const CommitRow* previous = nullptr;
    for (const CommitRow& row : trend.rows) {
      os << "| " << row.git_describe << " | " << row.program << " | "
         << row.config_hash.substr(0, 8) << " | " << row.record_count
         << " |";
      for (const std::string& column : columns) {
        os << ' ';
        const auto it = row.metrics.find(column);
        if (it == row.metrics.end()) {
          os << "—";
        } else {
          os << format_metric(it->second);
          if (previous != nullptr) {
            const auto prev_it = previous->metrics.find(column);
            double pct = 0.0;
            if (prev_it != previous->metrics.end() &&
                delta_pct(prev_it->second, it->second, &pct) &&
                pct != 0.0) {
              os.setf(std::ios::showpos);
              os << " (";
              os.precision(2);
              os << std::fixed << pct;
              os.unsetf(std::ios::showpos | std::ios::fixed);
              os.precision(6);
              os << "%)";
            }
          }
        }
        os << " |";
      }
      os << '\n';
      previous = &row;
    }
  }
  return os.str();
}

void write_dashboard_json(JsonWriter& json, const Dashboard& dashboard) {
  json.begin_object();
  json.kv("schema", kStoreSchemaVersion);
  json.kv("records", dashboard.records);
  json.key("scenarios").begin_array();
  for (const ScenarioTrend& trend : dashboard.scenarios) {
    json.begin_object();
    json.kv("scenario", trend.scenario);
    json.key("rows").begin_array();
    for (const CommitRow& row : trend.rows) {
      json.begin_object();
      json.kv("git_describe", row.git_describe);
      json.kv("program", row.program);
      json.kv("build_type", row.build_type);
      json.kv("config_hash", row.config_hash);
      json.kv("records", row.record_count);
      json.key("metrics").begin_object();
      for (const auto& [name, value] : row.metrics) json.kv(name, value);
      json.end_object();
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

std::string dashboard_json(const Dashboard& dashboard) {
  JsonWriter json;
  write_dashboard_json(json, dashboard);
  return json.str();
}

}  // namespace sitam::store
