// ResultStore: an append-only, crash-tolerant JSONL experiment store.
//
// One record (see store/record.h) is one line of JSON. Appends are a
// single positional-append write of the full line, so concurrent writers
// — threads in one process or separate processes sharing the file —
// interleave whole lines, never bytes. The store is never truncated or
// rewritten: a crash mid-append leaves at most one torn tail line, which
// readers detect (it fails to parse) and skip, and which the next writer
// isolates by starting its append with a newline when the file does not
// end in one. Everything derived (the index, dashboards) can always be
// rebuilt from the JSONL alone.
//
// The index maps StoreKey — (scenario, config_hash, git_describe) — to
// the number of records carrying that key. It is what makes sweeps
// resumable: a re-launched sweep asks contains() per grid cell and runs
// only the missing ones. A sidecar file (`<store>.idx`) persists the
// index together with the store byte size it covers; on open the sidecar
// is used only when that size matches the file exactly, otherwise the
// index is rebuilt by scanning (a stale or corrupt sidecar can cost a
// scan, never an incorrect answer). See docs/RESULT_STORE.md.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "store/record.h"

namespace sitam::store {

/// Derived key -> record-count map. Rebuildable from the JSONL at any
/// time; bounded by the number of distinct keys in the store file (clear()
/// + rebuild is the reset path, which also keeps SL015 honest).
class StoreIndex {
 public:
  void add(const StoreKey& key) { ++entries_[key]; }
  [[nodiscard]] bool contains(const StoreKey& key) const {
    return entries_.find(key) != entries_.end();
  }
  [[nodiscard]] std::int64_t count(const StoreKey& key) const {
    const auto it = entries_.find(key);
    return it == entries_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }
  [[nodiscard]] const std::map<StoreKey, std::int64_t>& entries() const {
    return entries_;
  }

 private:
  std::map<StoreKey, std::int64_t> entries_;
};

/// What opening a store found. `skipped_lines` counts unparseable lines
/// (torn tails from crashes, foreign-schema records); they are ignored,
/// never fatal.
struct StoreOpenStats {
  std::int64_t records = 0;
  std::int64_t skipped_lines = 0;
  bool index_from_sidecar = false;
};

class ResultStore {
 public:
  /// Opens (creating if absent) the JSONL at `path` for appending and
  /// loads or rebuilds the index. Throws std::runtime_error when the file
  /// cannot be opened for append.
  explicit ResultStore(std::string path);
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;
  /// Persists the index sidecar (best effort) and closes the file.
  ~ResultStore();

  /// Appends one record as a single atomic line write and indexes it.
  /// Returns false (after logging a warning) when the write fails; the
  /// index is only updated on success. Thread-safe. Throws
  /// std::invalid_argument if the record's key fields contain bytes the
  /// sidecar format reserves (tab or newline).
  bool append(const StoreRecord& record);

  /// True when at least one record with this key is in the store.
  [[nodiscard]] bool contains(const StoreKey& key) const;
  /// Number of records with this key.
  [[nodiscard]] std::int64_t count(const StoreKey& key) const;
  /// Snapshot of the index (copy: safe to iterate without the store lock).
  [[nodiscard]] StoreIndex index_snapshot() const;

  [[nodiscard]] StoreOpenStats open_stats() const;
  [[nodiscard]] std::int64_t records_appended() const;
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Writes the index sidecar now (temp file + rename, so the sidecar is
  /// never observed half-written). Returns false on I/O failure.
  bool flush_index();

  /// Reads every valid record in `path` in append order. Lines that fail
  /// to parse are counted into `*skipped_lines` (when non-null) and
  /// skipped. A missing file reads as empty.
  [[nodiscard]] static std::vector<StoreRecord> read_all(
      const std::string& path, std::int64_t* skipped_lines = nullptr);

  /// Sidecar path for a store path ("results.jsonl" -> "results.jsonl.idx").
  [[nodiscard]] static std::string index_path_for(const std::string& path);

 private:
  /// Builds the index: sidecar when its byte cover matches, full scan
  /// otherwise. Called from the constructor only; caller holds mutex_.
  void load_or_rebuild_index_locked();
  /// Writes the sidecar; caller holds mutex_.
  bool flush_index_locked();

  const std::string path_;
  int fd_ = -1;  ///< Append-only descriptor; -1 after a failed open.

  mutable std::mutex mutex_;
  StoreIndex index_;                 // guarded_by(mutex_)
  StoreOpenStats open_stats_;        // guarded_by(mutex_)
  std::int64_t appended_ = 0;        // guarded_by(mutex_)
  bool needs_leading_newline_ = false;  // guarded_by(mutex_)
  std::int64_t appends_since_flush_ = 0;  // guarded_by(mutex_)
};

}  // namespace sitam::store
