// Backfill importer: turns the hand-curated BENCH_*.json artifacts (and
// any other manifest-bearing result document) into store records, so the
// dashboard's history starts at the commits already in version control
// instead of at the first post-store run.
//
// The translation is mechanical and lossless for numbers: every numeric
// scalar in the document becomes one metric named by its dotted JSON path
// ("delta.seconds", "rows.2.speedup"; booleans import as 0/1), the
// embedded "manifest" object is lifted verbatim into the record's
// manifest, and the record digest hashes the exact document text. That
// makes reconciliation checkable: a dashboard row built from an imported
// record must agree field-for-field with the source artifact's manifest.
#pragma once

#include <string>

#include "store/record.h"

namespace sitam::store {

/// Flattens every numeric scalar under `value` into `metrics`, joining
/// object keys and array indices with '.' ("delta.seconds", "rows.2.t_min";
/// booleans become 0/1, strings and nulls are skipped). The importer and
/// the sweep fleet share this one JSON -> metric-map translation.
void flatten_numeric_metrics(const JsonValue& value, const std::string& prefix,
                             std::map<std::string, double>& metrics);

/// Imports one result document. `source_name` names the document in
/// errors and is the scenario fallback when the manifest has none (for a
/// file, pass the file stem). Throws JsonParseError on malformed JSON and
/// std::invalid_argument when the document has no "manifest" object.
[[nodiscard]] StoreRecord import_result_document(const std::string& text,
                                                 const std::string& source_name);

/// Reads and imports `path`. Throws std::runtime_error when the file
/// cannot be read, plus everything import_result_document throws.
[[nodiscard]] StoreRecord import_result_file(const std::string& path);

}  // namespace sitam::store
