# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_benchmarks "/root/repo/build-tsan/tools/sitam" "benchmarks")
set_tests_properties(cli_benchmarks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build-tsan/tools/sitam" "info" "--soc=mini5")
set_tests_properties(cli_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info_module "/root/repo/build-tsan/tools/sitam" "info" "--soc=d695" "--module=10" "--width=4")
set_tests_properties(cli_info_module PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate "/root/repo/build-tsan/tools/sitam" "generate" "--cores=6" "--seed=3")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compact "/root/repo/build-tsan/tools/sitam" "compact" "--soc=mini5" "--nr=300" "--parts=1,2")
set_tests_properties(cli_compact PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_optimize_json "/root/repo/build-tsan/tools/sitam" "optimize" "--soc=mini5" "--wmax=4" "--nr=300" "--json")
set_tests_properties(cli_optimize_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build-tsan/tools/sitam" "sweep" "--soc=mini5" "--widths=2,4" "--nr=300")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gantt "/root/repo/build-tsan/tools/sitam" "gantt" "--soc=mini5" "--wmax=4" "--nr=300" "--parts=2")
set_tests_properties(cli_gantt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_verify "/root/repo/build-tsan/tools/sitam" "verify" "--soc=mini5" "--wmax=4" "--nr=300")
set_tests_properties(cli_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build-tsan/tools/sitam" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
