# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart" "--soc=mini5" "--wmax=4" "--nr=200")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_soc "/root/repo/build-tsan/examples/custom_soc_flow" "--wmax=6" "--nr=300")
set_tests_properties(example_custom_soc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topology_tour "/root/repo/build-tsan/examples/topology_tour" "--wires=4" "--k=1")
set_tests_properties(example_topology_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_walkthrough "/root/repo/build-tsan/examples/scheduling_walkthrough" "--soc=mini5" "--wmax=4" "--nr=300")
set_tests_properties(example_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_html_report "/root/repo/build-tsan/examples/html_report" "--soc=mini5" "--nr=300" "--widths=2,4" "--out=example_report.html")
set_tests_properties(example_html_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
