file(REMOVE_RECURSE
  "CMakeFiles/area_annealing_test.dir/area_annealing_test.cpp.o"
  "CMakeFiles/area_annealing_test.dir/area_annealing_test.cpp.o.d"
  "area_annealing_test"
  "area_annealing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_annealing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
