# Empty dependencies file for area_annealing_test.
# This may be replaced when dependencies are built.
