file(REMOVE_RECURSE
  "CMakeFiles/wrapper_report_test.dir/wrapper_report_test.cpp.o"
  "CMakeFiles/wrapper_report_test.dir/wrapper_report_test.cpp.o.d"
  "wrapper_report_test"
  "wrapper_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrapper_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
