file(REMOVE_RECURSE
  "CMakeFiles/tam_extensions_test.dir/tam_extensions_test.cpp.o"
  "CMakeFiles/tam_extensions_test.dir/tam_extensions_test.cpp.o.d"
  "tam_extensions_test"
  "tam_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tam_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
