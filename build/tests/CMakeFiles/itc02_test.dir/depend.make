# Empty dependencies file for itc02_test.
# This may be replaced when dependencies are built.
