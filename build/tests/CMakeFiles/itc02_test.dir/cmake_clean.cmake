file(REMOVE_RECURSE
  "CMakeFiles/itc02_test.dir/itc02_test.cpp.o"
  "CMakeFiles/itc02_test.dir/itc02_test.cpp.o.d"
  "itc02_test"
  "itc02_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itc02_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
