file(REMOVE_RECURSE
  "CMakeFiles/pareto_gantt_test.dir/pareto_gantt_test.cpp.o"
  "CMakeFiles/pareto_gantt_test.dir/pareto_gantt_test.cpp.o.d"
  "pareto_gantt_test"
  "pareto_gantt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_gantt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
