# Empty dependencies file for pareto_gantt_test.
# This may be replaced when dependencies are built.
