file(REMOVE_RECURSE
  "CMakeFiles/rectpack_test.dir/rectpack_test.cpp.o"
  "CMakeFiles/rectpack_test.dir/rectpack_test.cpp.o.d"
  "rectpack_test"
  "rectpack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rectpack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
