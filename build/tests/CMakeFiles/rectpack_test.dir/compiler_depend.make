# Empty compiler generated dependencies file for rectpack_test.
# This may be replaced when dependencies are built.
