# Empty dependencies file for sitest_test.
# This may be replaced when dependencies are built.
