file(REMOVE_RECURSE
  "CMakeFiles/sitest_test.dir/sitest_test.cpp.o"
  "CMakeFiles/sitest_test.dir/sitest_test.cpp.o.d"
  "sitest_test"
  "sitest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
