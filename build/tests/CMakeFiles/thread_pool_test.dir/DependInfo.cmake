
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/thread_pool_test.cpp" "tests/CMakeFiles/thread_pool_test.dir/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/thread_pool_test.dir/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sitam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tam/CMakeFiles/sitam_tam.dir/DependInfo.cmake"
  "/root/repo/build/src/sitest/CMakeFiles/sitam_sitest.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/sitam_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/sitam_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/sitam_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/wrapper/CMakeFiles/sitam_wrapper.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/sitam_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sitam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
