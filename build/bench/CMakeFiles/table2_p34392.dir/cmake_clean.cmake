file(REMOVE_RECURSE
  "CMakeFiles/table2_p34392.dir/table2_p34392.cpp.o"
  "CMakeFiles/table2_p34392.dir/table2_p34392.cpp.o.d"
  "table2_p34392"
  "table2_p34392.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_p34392.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
