# Empty compiler generated dependencies file for table2_p34392.
# This may be replaced when dependencies are built.
