file(REMOVE_RECURSE
  "CMakeFiles/rectpack_vs_trarchitect.dir/rectpack_vs_trarchitect.cpp.o"
  "CMakeFiles/rectpack_vs_trarchitect.dir/rectpack_vs_trarchitect.cpp.o.d"
  "rectpack_vs_trarchitect"
  "rectpack_vs_trarchitect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rectpack_vs_trarchitect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
