# Empty dependencies file for rectpack_vs_trarchitect.
# This may be replaced when dependencies are built.
