file(REMOVE_RECURSE
  "CMakeFiles/motivation_si_cost.dir/motivation_si_cost.cpp.o"
  "CMakeFiles/motivation_si_cost.dir/motivation_si_cost.cpp.o.d"
  "motivation_si_cost"
  "motivation_si_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_si_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
