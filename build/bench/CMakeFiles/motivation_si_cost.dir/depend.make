# Empty dependencies file for motivation_si_cost.
# This may be replaced when dependencies are built.
