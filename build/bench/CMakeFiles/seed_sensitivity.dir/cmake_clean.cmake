file(REMOVE_RECURSE
  "CMakeFiles/seed_sensitivity.dir/seed_sensitivity.cpp.o"
  "CMakeFiles/seed_sensitivity.dir/seed_sensitivity.cpp.o.d"
  "seed_sensitivity"
  "seed_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seed_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
