# Empty dependencies file for compaction_study.
# This may be replaced when dependencies are built.
