# Empty compiler generated dependencies file for table3_p93791.
# This may be replaced when dependencies are built.
