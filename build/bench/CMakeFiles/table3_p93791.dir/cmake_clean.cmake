file(REMOVE_RECURSE
  "CMakeFiles/table3_p93791.dir/table3_p93791.cpp.o"
  "CMakeFiles/table3_p93791.dir/table3_p93791.cpp.o.d"
  "table3_p93791"
  "table3_p93791.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_p93791.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
