file(REMOVE_RECURSE
  "CMakeFiles/annealing_vs_alg2.dir/annealing_vs_alg2.cpp.o"
  "CMakeFiles/annealing_vs_alg2.dir/annealing_vs_alg2.cpp.o.d"
  "annealing_vs_alg2"
  "annealing_vs_alg2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annealing_vs_alg2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
