# Empty compiler generated dependencies file for annealing_vs_alg2.
# This may be replaced when dependencies are built.
