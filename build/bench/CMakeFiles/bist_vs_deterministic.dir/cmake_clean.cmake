file(REMOVE_RECURSE
  "CMakeFiles/bist_vs_deterministic.dir/bist_vs_deterministic.cpp.o"
  "CMakeFiles/bist_vs_deterministic.dir/bist_vs_deterministic.cpp.o.d"
  "bist_vs_deterministic"
  "bist_vs_deterministic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_vs_deterministic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
