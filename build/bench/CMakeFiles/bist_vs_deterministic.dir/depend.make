# Empty dependencies file for bist_vs_deterministic.
# This may be replaced when dependencies are built.
