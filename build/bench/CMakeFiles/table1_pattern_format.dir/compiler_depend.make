# Empty compiler generated dependencies file for table1_pattern_format.
# This may be replaced when dependencies are built.
