file(REMOVE_RECURSE
  "CMakeFiles/table1_pattern_format.dir/table1_pattern_format.cpp.o"
  "CMakeFiles/table1_pattern_format.dir/table1_pattern_format.cpp.o.d"
  "table1_pattern_format"
  "table1_pattern_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pattern_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
