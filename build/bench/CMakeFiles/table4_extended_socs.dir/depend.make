# Empty dependencies file for table4_extended_socs.
# This may be replaced when dependencies are built.
