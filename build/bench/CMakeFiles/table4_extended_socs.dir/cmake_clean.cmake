file(REMOVE_RECURSE
  "CMakeFiles/table4_extended_socs.dir/table4_extended_socs.cpp.o"
  "CMakeFiles/table4_extended_socs.dir/table4_extended_socs.cpp.o.d"
  "table4_extended_socs"
  "table4_extended_socs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_extended_socs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
