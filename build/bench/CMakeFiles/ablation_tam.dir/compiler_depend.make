# Empty compiler generated dependencies file for ablation_tam.
# This may be replaced when dependencies are built.
