file(REMOVE_RECURSE
  "CMakeFiles/ablation_tam.dir/ablation_tam.cpp.o"
  "CMakeFiles/ablation_tam.dir/ablation_tam.cpp.o.d"
  "ablation_tam"
  "ablation_tam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
