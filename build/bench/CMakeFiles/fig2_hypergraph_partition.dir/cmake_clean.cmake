file(REMOVE_RECURSE
  "CMakeFiles/fig2_hypergraph_partition.dir/fig2_hypergraph_partition.cpp.o"
  "CMakeFiles/fig2_hypergraph_partition.dir/fig2_hypergraph_partition.cpp.o.d"
  "fig2_hypergraph_partition"
  "fig2_hypergraph_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hypergraph_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
