# Empty compiler generated dependencies file for interleaving_gain.
# This may be replaced when dependencies are built.
