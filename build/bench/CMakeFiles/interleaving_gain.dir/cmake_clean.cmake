file(REMOVE_RECURSE
  "CMakeFiles/interleaving_gain.dir/interleaving_gain.cpp.o"
  "CMakeFiles/interleaving_gain.dir/interleaving_gain.cpp.o.d"
  "interleaving_gain"
  "interleaving_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interleaving_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
