# Empty compiler generated dependencies file for dft_area_overhead.
# This may be replaced when dependencies are built.
