file(REMOVE_RECURSE
  "CMakeFiles/dft_area_overhead.dir/dft_area_overhead.cpp.o"
  "CMakeFiles/dft_area_overhead.dir/dft_area_overhead.cpp.o.d"
  "dft_area_overhead"
  "dft_area_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dft_area_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
