file(REMOVE_RECURSE
  "CMakeFiles/sitam.dir/sitam_cli.cpp.o"
  "CMakeFiles/sitam.dir/sitam_cli.cpp.o.d"
  "sitam"
  "sitam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
