# Empty compiler generated dependencies file for sitam.
# This may be replaced when dependencies are built.
