file(REMOVE_RECURSE
  "libsitam_wrapper.a"
)
