# Empty compiler generated dependencies file for sitam_wrapper.
# This may be replaced when dependencies are built.
