file(REMOVE_RECURSE
  "CMakeFiles/sitam_wrapper.dir/design.cpp.o"
  "CMakeFiles/sitam_wrapper.dir/design.cpp.o.d"
  "CMakeFiles/sitam_wrapper.dir/pareto.cpp.o"
  "CMakeFiles/sitam_wrapper.dir/pareto.cpp.o.d"
  "CMakeFiles/sitam_wrapper.dir/report.cpp.o"
  "CMakeFiles/sitam_wrapper.dir/report.cpp.o.d"
  "libsitam_wrapper.a"
  "libsitam_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitam_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
