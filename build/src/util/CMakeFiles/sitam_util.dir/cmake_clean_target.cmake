file(REMOVE_RECURSE
  "libsitam_util.a"
)
