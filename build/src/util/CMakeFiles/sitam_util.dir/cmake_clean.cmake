file(REMOVE_RECURSE
  "CMakeFiles/sitam_util.dir/cli.cpp.o"
  "CMakeFiles/sitam_util.dir/cli.cpp.o.d"
  "CMakeFiles/sitam_util.dir/json.cpp.o"
  "CMakeFiles/sitam_util.dir/json.cpp.o.d"
  "CMakeFiles/sitam_util.dir/log.cpp.o"
  "CMakeFiles/sitam_util.dir/log.cpp.o.d"
  "CMakeFiles/sitam_util.dir/rng.cpp.o"
  "CMakeFiles/sitam_util.dir/rng.cpp.o.d"
  "CMakeFiles/sitam_util.dir/table.cpp.o"
  "CMakeFiles/sitam_util.dir/table.cpp.o.d"
  "CMakeFiles/sitam_util.dir/thread_pool.cpp.o"
  "CMakeFiles/sitam_util.dir/thread_pool.cpp.o.d"
  "libsitam_util.a"
  "libsitam_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitam_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
