# Empty compiler generated dependencies file for sitam_util.
# This may be replaced when dependencies are built.
