
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sitest/group.cpp" "src/sitest/CMakeFiles/sitam_sitest.dir/group.cpp.o" "gcc" "src/sitest/CMakeFiles/sitam_sitest.dir/group.cpp.o.d"
  "/root/repo/src/sitest/io.cpp" "src/sitest/CMakeFiles/sitam_sitest.dir/io.cpp.o" "gcc" "src/sitest/CMakeFiles/sitam_sitest.dir/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pattern/CMakeFiles/sitam_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/sitam_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/sitam_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sitam_util.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/sitam_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
