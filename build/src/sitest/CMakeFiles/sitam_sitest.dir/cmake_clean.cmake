file(REMOVE_RECURSE
  "CMakeFiles/sitam_sitest.dir/group.cpp.o"
  "CMakeFiles/sitam_sitest.dir/group.cpp.o.d"
  "CMakeFiles/sitam_sitest.dir/io.cpp.o"
  "CMakeFiles/sitam_sitest.dir/io.cpp.o.d"
  "libsitam_sitest.a"
  "libsitam_sitest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitam_sitest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
