file(REMOVE_RECURSE
  "libsitam_sitest.a"
)
