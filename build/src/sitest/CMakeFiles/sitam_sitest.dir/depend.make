# Empty dependencies file for sitam_sitest.
# This may be replaced when dependencies are built.
