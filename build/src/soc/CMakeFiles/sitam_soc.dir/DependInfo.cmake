
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/benchmarks.cpp" "src/soc/CMakeFiles/sitam_soc.dir/benchmarks.cpp.o" "gcc" "src/soc/CMakeFiles/sitam_soc.dir/benchmarks.cpp.o.d"
  "/root/repo/src/soc/itc02.cpp" "src/soc/CMakeFiles/sitam_soc.dir/itc02.cpp.o" "gcc" "src/soc/CMakeFiles/sitam_soc.dir/itc02.cpp.o.d"
  "/root/repo/src/soc/parser.cpp" "src/soc/CMakeFiles/sitam_soc.dir/parser.cpp.o" "gcc" "src/soc/CMakeFiles/sitam_soc.dir/parser.cpp.o.d"
  "/root/repo/src/soc/soc.cpp" "src/soc/CMakeFiles/sitam_soc.dir/soc.cpp.o" "gcc" "src/soc/CMakeFiles/sitam_soc.dir/soc.cpp.o.d"
  "/root/repo/src/soc/synth.cpp" "src/soc/CMakeFiles/sitam_soc.dir/synth.cpp.o" "gcc" "src/soc/CMakeFiles/sitam_soc.dir/synth.cpp.o.d"
  "/root/repo/src/soc/writer.cpp" "src/soc/CMakeFiles/sitam_soc.dir/writer.cpp.o" "gcc" "src/soc/CMakeFiles/sitam_soc.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sitam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
