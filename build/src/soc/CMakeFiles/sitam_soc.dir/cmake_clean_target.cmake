file(REMOVE_RECURSE
  "libsitam_soc.a"
)
