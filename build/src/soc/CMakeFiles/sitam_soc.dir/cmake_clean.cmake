file(REMOVE_RECURSE
  "CMakeFiles/sitam_soc.dir/benchmarks.cpp.o"
  "CMakeFiles/sitam_soc.dir/benchmarks.cpp.o.d"
  "CMakeFiles/sitam_soc.dir/itc02.cpp.o"
  "CMakeFiles/sitam_soc.dir/itc02.cpp.o.d"
  "CMakeFiles/sitam_soc.dir/parser.cpp.o"
  "CMakeFiles/sitam_soc.dir/parser.cpp.o.d"
  "CMakeFiles/sitam_soc.dir/soc.cpp.o"
  "CMakeFiles/sitam_soc.dir/soc.cpp.o.d"
  "CMakeFiles/sitam_soc.dir/synth.cpp.o"
  "CMakeFiles/sitam_soc.dir/synth.cpp.o.d"
  "CMakeFiles/sitam_soc.dir/writer.cpp.o"
  "CMakeFiles/sitam_soc.dir/writer.cpp.o.d"
  "libsitam_soc.a"
  "libsitam_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitam_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
