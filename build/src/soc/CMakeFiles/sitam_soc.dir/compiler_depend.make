# Empty compiler generated dependencies file for sitam_soc.
# This may be replaced when dependencies are built.
