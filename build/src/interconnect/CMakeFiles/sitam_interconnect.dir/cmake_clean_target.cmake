file(REMOVE_RECURSE
  "libsitam_interconnect.a"
)
