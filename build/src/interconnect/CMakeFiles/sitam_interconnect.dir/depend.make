# Empty dependencies file for sitam_interconnect.
# This may be replaced when dependencies are built.
