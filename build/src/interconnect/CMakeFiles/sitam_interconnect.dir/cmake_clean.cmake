file(REMOVE_RECURSE
  "CMakeFiles/sitam_interconnect.dir/terminal_space.cpp.o"
  "CMakeFiles/sitam_interconnect.dir/terminal_space.cpp.o.d"
  "CMakeFiles/sitam_interconnect.dir/topology.cpp.o"
  "CMakeFiles/sitam_interconnect.dir/topology.cpp.o.d"
  "libsitam_interconnect.a"
  "libsitam_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitam_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
