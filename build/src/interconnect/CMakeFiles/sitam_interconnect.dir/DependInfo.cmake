
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interconnect/terminal_space.cpp" "src/interconnect/CMakeFiles/sitam_interconnect.dir/terminal_space.cpp.o" "gcc" "src/interconnect/CMakeFiles/sitam_interconnect.dir/terminal_space.cpp.o.d"
  "/root/repo/src/interconnect/topology.cpp" "src/interconnect/CMakeFiles/sitam_interconnect.dir/topology.cpp.o" "gcc" "src/interconnect/CMakeFiles/sitam_interconnect.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/sitam_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sitam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
