file(REMOVE_RECURSE
  "libsitam_core.a"
)
