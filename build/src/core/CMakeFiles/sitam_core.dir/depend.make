# Empty dependencies file for sitam_core.
# This may be replaced when dependencies are built.
