file(REMOVE_RECURSE
  "CMakeFiles/sitam_core.dir/cache.cpp.o"
  "CMakeFiles/sitam_core.dir/cache.cpp.o.d"
  "CMakeFiles/sitam_core.dir/flow.cpp.o"
  "CMakeFiles/sitam_core.dir/flow.cpp.o.d"
  "CMakeFiles/sitam_core.dir/gantt.cpp.o"
  "CMakeFiles/sitam_core.dir/gantt.cpp.o.d"
  "CMakeFiles/sitam_core.dir/report.cpp.o"
  "CMakeFiles/sitam_core.dir/report.cpp.o.d"
  "CMakeFiles/sitam_core.dir/stats.cpp.o"
  "CMakeFiles/sitam_core.dir/stats.cpp.o.d"
  "libsitam_core.a"
  "libsitam_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitam_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
