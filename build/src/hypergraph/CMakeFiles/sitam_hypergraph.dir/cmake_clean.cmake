file(REMOVE_RECURSE
  "CMakeFiles/sitam_hypergraph.dir/hypergraph.cpp.o"
  "CMakeFiles/sitam_hypergraph.dir/hypergraph.cpp.o.d"
  "CMakeFiles/sitam_hypergraph.dir/partition.cpp.o"
  "CMakeFiles/sitam_hypergraph.dir/partition.cpp.o.d"
  "libsitam_hypergraph.a"
  "libsitam_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitam_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
