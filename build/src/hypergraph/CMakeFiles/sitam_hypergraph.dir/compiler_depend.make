# Empty compiler generated dependencies file for sitam_hypergraph.
# This may be replaced when dependencies are built.
