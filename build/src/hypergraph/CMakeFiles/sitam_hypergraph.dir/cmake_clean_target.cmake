file(REMOVE_RECURSE
  "libsitam_hypergraph.a"
)
