
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tam/annealing.cpp" "src/tam/CMakeFiles/sitam_tam.dir/annealing.cpp.o" "gcc" "src/tam/CMakeFiles/sitam_tam.dir/annealing.cpp.o.d"
  "/root/repo/src/tam/architecture.cpp" "src/tam/CMakeFiles/sitam_tam.dir/architecture.cpp.o" "gcc" "src/tam/CMakeFiles/sitam_tam.dir/architecture.cpp.o.d"
  "/root/repo/src/tam/area.cpp" "src/tam/CMakeFiles/sitam_tam.dir/area.cpp.o" "gcc" "src/tam/CMakeFiles/sitam_tam.dir/area.cpp.o.d"
  "/root/repo/src/tam/bounds.cpp" "src/tam/CMakeFiles/sitam_tam.dir/bounds.cpp.o" "gcc" "src/tam/CMakeFiles/sitam_tam.dir/bounds.cpp.o.d"
  "/root/repo/src/tam/evaluator.cpp" "src/tam/CMakeFiles/sitam_tam.dir/evaluator.cpp.o" "gcc" "src/tam/CMakeFiles/sitam_tam.dir/evaluator.cpp.o.d"
  "/root/repo/src/tam/exhaustive.cpp" "src/tam/CMakeFiles/sitam_tam.dir/exhaustive.cpp.o" "gcc" "src/tam/CMakeFiles/sitam_tam.dir/exhaustive.cpp.o.d"
  "/root/repo/src/tam/optimizer.cpp" "src/tam/CMakeFiles/sitam_tam.dir/optimizer.cpp.o" "gcc" "src/tam/CMakeFiles/sitam_tam.dir/optimizer.cpp.o.d"
  "/root/repo/src/tam/rectpack.cpp" "src/tam/CMakeFiles/sitam_tam.dir/rectpack.cpp.o" "gcc" "src/tam/CMakeFiles/sitam_tam.dir/rectpack.cpp.o.d"
  "/root/repo/src/tam/verify.cpp" "src/tam/CMakeFiles/sitam_tam.dir/verify.cpp.o" "gcc" "src/tam/CMakeFiles/sitam_tam.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wrapper/CMakeFiles/sitam_wrapper.dir/DependInfo.cmake"
  "/root/repo/build/src/sitest/CMakeFiles/sitam_sitest.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/sitam_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sitam_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/sitam_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/sitam_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/sitam_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
