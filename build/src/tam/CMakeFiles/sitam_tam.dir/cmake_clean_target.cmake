file(REMOVE_RECURSE
  "libsitam_tam.a"
)
