file(REMOVE_RECURSE
  "CMakeFiles/sitam_tam.dir/annealing.cpp.o"
  "CMakeFiles/sitam_tam.dir/annealing.cpp.o.d"
  "CMakeFiles/sitam_tam.dir/architecture.cpp.o"
  "CMakeFiles/sitam_tam.dir/architecture.cpp.o.d"
  "CMakeFiles/sitam_tam.dir/area.cpp.o"
  "CMakeFiles/sitam_tam.dir/area.cpp.o.d"
  "CMakeFiles/sitam_tam.dir/bounds.cpp.o"
  "CMakeFiles/sitam_tam.dir/bounds.cpp.o.d"
  "CMakeFiles/sitam_tam.dir/evaluator.cpp.o"
  "CMakeFiles/sitam_tam.dir/evaluator.cpp.o.d"
  "CMakeFiles/sitam_tam.dir/exhaustive.cpp.o"
  "CMakeFiles/sitam_tam.dir/exhaustive.cpp.o.d"
  "CMakeFiles/sitam_tam.dir/optimizer.cpp.o"
  "CMakeFiles/sitam_tam.dir/optimizer.cpp.o.d"
  "CMakeFiles/sitam_tam.dir/rectpack.cpp.o"
  "CMakeFiles/sitam_tam.dir/rectpack.cpp.o.d"
  "CMakeFiles/sitam_tam.dir/verify.cpp.o"
  "CMakeFiles/sitam_tam.dir/verify.cpp.o.d"
  "libsitam_tam.a"
  "libsitam_tam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitam_tam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
