# Empty compiler generated dependencies file for sitam_tam.
# This may be replaced when dependencies are built.
