file(REMOVE_RECURSE
  "libsitam_pattern.a"
)
