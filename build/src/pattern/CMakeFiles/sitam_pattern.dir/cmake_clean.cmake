file(REMOVE_RECURSE
  "CMakeFiles/sitam_pattern.dir/bist.cpp.o"
  "CMakeFiles/sitam_pattern.dir/bist.cpp.o.d"
  "CMakeFiles/sitam_pattern.dir/compaction.cpp.o"
  "CMakeFiles/sitam_pattern.dir/compaction.cpp.o.d"
  "CMakeFiles/sitam_pattern.dir/coverage.cpp.o"
  "CMakeFiles/sitam_pattern.dir/coverage.cpp.o.d"
  "CMakeFiles/sitam_pattern.dir/generator.cpp.o"
  "CMakeFiles/sitam_pattern.dir/generator.cpp.o.d"
  "CMakeFiles/sitam_pattern.dir/io.cpp.o"
  "CMakeFiles/sitam_pattern.dir/io.cpp.o.d"
  "CMakeFiles/sitam_pattern.dir/pattern.cpp.o"
  "CMakeFiles/sitam_pattern.dir/pattern.cpp.o.d"
  "libsitam_pattern.a"
  "libsitam_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitam_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
