
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pattern/bist.cpp" "src/pattern/CMakeFiles/sitam_pattern.dir/bist.cpp.o" "gcc" "src/pattern/CMakeFiles/sitam_pattern.dir/bist.cpp.o.d"
  "/root/repo/src/pattern/compaction.cpp" "src/pattern/CMakeFiles/sitam_pattern.dir/compaction.cpp.o" "gcc" "src/pattern/CMakeFiles/sitam_pattern.dir/compaction.cpp.o.d"
  "/root/repo/src/pattern/coverage.cpp" "src/pattern/CMakeFiles/sitam_pattern.dir/coverage.cpp.o" "gcc" "src/pattern/CMakeFiles/sitam_pattern.dir/coverage.cpp.o.d"
  "/root/repo/src/pattern/generator.cpp" "src/pattern/CMakeFiles/sitam_pattern.dir/generator.cpp.o" "gcc" "src/pattern/CMakeFiles/sitam_pattern.dir/generator.cpp.o.d"
  "/root/repo/src/pattern/io.cpp" "src/pattern/CMakeFiles/sitam_pattern.dir/io.cpp.o" "gcc" "src/pattern/CMakeFiles/sitam_pattern.dir/io.cpp.o.d"
  "/root/repo/src/pattern/pattern.cpp" "src/pattern/CMakeFiles/sitam_pattern.dir/pattern.cpp.o" "gcc" "src/pattern/CMakeFiles/sitam_pattern.dir/pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interconnect/CMakeFiles/sitam_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/sitam_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sitam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
