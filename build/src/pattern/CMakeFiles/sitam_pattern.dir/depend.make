# Empty dependencies file for sitam_pattern.
# This may be replaced when dependencies are built.
