# Empty dependencies file for html_report.
# This may be replaced when dependencies are built.
