file(REMOVE_RECURSE
  "CMakeFiles/html_report.dir/html_report.cpp.o"
  "CMakeFiles/html_report.dir/html_report.cpp.o.d"
  "html_report"
  "html_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
