# Empty dependencies file for scheduling_walkthrough.
# This may be replaced when dependencies are built.
