file(REMOVE_RECURSE
  "CMakeFiles/scheduling_walkthrough.dir/scheduling_walkthrough.cpp.o"
  "CMakeFiles/scheduling_walkthrough.dir/scheduling_walkthrough.cpp.o.d"
  "scheduling_walkthrough"
  "scheduling_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduling_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
