# Empty dependencies file for custom_soc_flow.
# This may be replaced when dependencies are built.
