file(REMOVE_RECURSE
  "CMakeFiles/custom_soc_flow.dir/custom_soc_flow.cpp.o"
  "CMakeFiles/custom_soc_flow.dir/custom_soc_flow.cpp.o.d"
  "custom_soc_flow"
  "custom_soc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_soc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
